//! The dynamic web-page cache (paper Configuration III's front cache).
//!
//! Keys are canonical [`PageKey`]s; values are page bodies. The cache
//! honours `Cache-Control: eject`-style invalidation messages
//! ([`PageCache::invalidate`]) sent by the invalidator, supports optional
//! TTL expiry (the Oracle9i time-based-refresh baseline the paper argues
//! against), and offers LRU / LFU / FIFO eviction.

use crate::stats::CacheStats;
use cacheportal_obs::{Counter, Gauge, MetricsRegistry};
use cacheportal_web::clock::Micros;
use cacheportal_web::PageKey;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least recently used.
    Lru,
    /// Least frequently used (ties broken by recency).
    Lfu,
    /// First in, first out (insertion order, refreshed on overwrite).
    Fifo,
}

/// Cache configuration.
#[derive(Debug, Clone)]
pub struct PageCacheConfig {
    /// Maximum number of pages (the paper's `cache_size` parameter).
    pub capacity: usize,
    /// Eviction policy.
    pub policy: EvictionPolicy,
    /// Optional time-to-live; entries older than this are treated as
    /// expired on lookup. `None` disables TTL (CachePortal mode: freshness
    /// comes from invalidation, not expiry).
    pub ttl_micros: Option<Micros>,
}

impl Default for PageCacheConfig {
    fn default() -> Self {
        PageCacheConfig {
            capacity: 1024,
            policy: EvictionPolicy::Lru,
            ttl_micros: None,
        }
    }
}

#[derive(Debug)]
struct Entry {
    body: String,
    inserted_at: Micros,
    last_used: Micros,
    /// Logical use counter for LFU.
    uses: u64,
    /// Insertion sequence for FIFO and LRU tie-breaks.
    seq: u64,
}

/// A web page cache.
///
/// ```
/// use cacheportal_cache::{PageCache, PageCacheConfig};
/// use cacheportal_web::PageKey;
///
/// let cache = PageCache::new(PageCacheConfig::default());
/// let key = PageKey::raw("shop/page?g:id=7");
/// cache.put(key.clone(), "<html>…</html>".into(), 0);
/// assert!(cache.get(&key, 1).is_some());
///
/// // The invalidator's eject message:
/// cache.invalidate([&key]);
/// assert!(cache.get(&key, 2).is_none());
/// ```
pub struct PageCache {
    inner: Mutex<Inner>,
    config: PageCacheConfig,
}

/// Registry handles mirroring [`CacheStats`], updated at the same mutation
/// sites so `/metrics` and `metrics_snapshot()` always agree with
/// [`PageCache::stats`].
struct WiredMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    insertions: Arc<Counter>,
    evictions: Arc<Counter>,
    invalidations: Arc<Counter>,
    expirations: Arc<Counter>,
    resident: Arc<Gauge>,
}

struct Inner {
    map: HashMap<PageKey, Entry>,
    stats: CacheStats,
    next_seq: u64,
    wired: Option<WiredMetrics>,
}

impl Inner {
    /// Re-publish the full `stats` struct into the wired registry handles.
    /// Called after every stats mutation; field-by-field `set_total` keeps
    /// the two paths equal by construction.
    fn publish(&self) {
        if let Some(w) = &self.wired {
            w.hits.set_total(self.stats.hits);
            w.misses.set_total(self.stats.misses);
            w.insertions.set_total(self.stats.insertions);
            w.evictions.set_total(self.stats.evictions);
            w.invalidations.set_total(self.stats.invalidations);
            w.expirations.set_total(self.stats.expirations);
            w.resident.set(self.map.len() as i64);
        }
    }
}

impl PageCache {
    /// Create a cache with the given configuration.
    pub fn new(config: PageCacheConfig) -> Self {
        PageCache {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(config.capacity.min(4096)),
                stats: CacheStats::default(),
                next_seq: 0,
                wired: None,
            }),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PageCacheConfig {
        &self.config
    }

    /// Mirror this cache's [`CacheStats`] into `registry` under
    /// `<prefix>.{hits,misses,insertions,evictions,invalidations,expirations}`
    /// counters and a `<prefix>.resident` gauge. From this point on every
    /// stats mutation also updates the registry, so metric snapshots and the
    /// Prometheus endpoint agree with [`PageCache::stats`] at all times.
    pub fn wire_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        let wired = WiredMetrics {
            hits: registry.counter(&format!("{prefix}.hits")),
            misses: registry.counter(&format!("{prefix}.misses")),
            insertions: registry.counter(&format!("{prefix}.insertions")),
            evictions: registry.counter(&format!("{prefix}.evictions")),
            invalidations: registry.counter(&format!("{prefix}.invalidations")),
            expirations: registry.counter(&format!("{prefix}.expirations")),
            resident: registry.gauge(&format!("{prefix}.resident")),
        };
        let mut inner = self.inner.lock();
        inner.wired = Some(wired);
        inner.publish();
    }

    /// Look up a page. `now` drives TTL expiry and recency bookkeeping.
    pub fn get(&self, key: &PageKey, now: Micros) -> Option<String> {
        let mut inner = self.inner.lock();
        // TTL check first (entry may exist but be expired).
        let expired = match inner.map.get(key) {
            Some(e) => self
                .config
                .ttl_micros
                .is_some_and(|ttl| now.saturating_sub(e.inserted_at) > ttl),
            None => {
                inner.stats.misses += 1;
                inner.publish();
                return None;
            }
        };
        if expired {
            inner.map.remove(key);
            inner.stats.expirations += 1;
            inner.stats.misses += 1;
            inner.publish();
            return None;
        }
        let e = inner.map.get_mut(key).expect("checked above");
        e.last_used = now;
        e.uses += 1;
        let body = e.body.clone();
        inner.stats.hits += 1;
        inner.publish();
        Some(body)
    }

    /// Insert (or overwrite) a page, evicting per policy if at capacity.
    pub fn put(&self, key: PageKey, body: String, now: Micros) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.config.capacity {
            if let Some(victim) = self.pick_victim(&inner.map) {
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                body,
                inserted_at: now,
                last_used: now,
                uses: 0,
                seq,
            },
        );
        inner.stats.insertions += 1;
        inner.publish();
    }

    fn pick_victim(&self, map: &HashMap<PageKey, Entry>) -> Option<PageKey> {
        let best = match self.config.policy {
            EvictionPolicy::Lru => map
                .iter()
                .min_by_key(|(_, e)| (e.last_used, e.seq)),
            EvictionPolicy::Lfu => map.iter().min_by_key(|(_, e)| (e.uses, e.last_used, e.seq)),
            EvictionPolicy::Fifo => map.iter().min_by_key(|(_, e)| e.seq),
        };
        best.map(|(k, _)| k.clone())
    }

    /// Process an invalidation (eject) message: remove the named pages.
    /// Returns how many were actually present.
    pub fn invalidate<'a>(&self, keys: impl IntoIterator<Item = &'a PageKey>) -> usize {
        self.invalidate_collect(keys).len()
    }

    /// Like [`PageCache::invalidate`], but returns the keys that were
    /// actually resident (the provenance log records which named pages the
    /// eject really removed vs. merely mentioned).
    pub fn invalidate_collect<'a>(
        &self,
        keys: impl IntoIterator<Item = &'a PageKey>,
    ) -> Vec<PageKey> {
        let mut inner = self.inner.lock();
        let mut removed = Vec::new();
        for k in keys {
            if inner.map.remove(k).is_some() {
                removed.push(k.clone());
            }
        }
        inner.stats.invalidations += removed.len() as u64;
        inner.publish();
        removed
    }

    /// Drop everything (used by the coarse `TableLevel` policy fallback).
    pub fn clear(&self) -> usize {
        let mut inner = self.inner.lock();
        let n = inner.map.len();
        inner.stats.invalidations += n as u64;
        inner.map.clear();
        inner.publish();
        n
    }

    /// Conservatively drop every page admitted at or after `cutoff_micros`.
    /// A rebooted edge calls this with its last acked bus watermark's
    /// timestamp: any page admitted past that point may have missed an
    /// eject while the edge was down, so it is flushed (over-invalidation,
    /// never staleness). Returns how many pages were dropped.
    pub fn evict_admitted_since(&self, cutoff_micros: Micros) -> usize {
        let mut inner = self.inner.lock();
        let doomed: Vec<PageKey> = inner
            .map
            .iter()
            .filter(|(_, e)| e.inserted_at >= cutoff_micros)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            inner.map.remove(k);
        }
        inner.stats.invalidations += doomed.len() as u64;
        inner.publish();
        doomed.len()
    }

    /// Is the page currently cached (no stats side effects, no TTL check)?
    pub fn contains(&self, key: &PageKey) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// When the cached page was admitted (no stats side effects, no TTL
    /// check); `None` when the page is not cached. The invalidator's
    /// value-preserving shortcuts consult this to tell pages generated
    /// before the sync interval (safe to keep) from pages generated
    /// mid-interval (which may reflect a transient state the interval's
    /// endpoint comparison cannot see).
    pub fn admitted_at(&self, key: &PageKey) -> Option<Micros> {
        self.inner.lock().map.get(key).map(|e| e.inserted_at)
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All currently cached keys (freshness-oracle support).
    pub fn keys(&self) -> Vec<PageKey> {
        self.inner.lock().map.keys().cloned().collect()
    }

    /// Hit/miss/eviction/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> PageKey {
        PageKey::raw(s)
    }

    fn cache(capacity: usize, policy: EvictionPolicy) -> PageCache {
        PageCache::new(PageCacheConfig {
            capacity,
            policy,
            ttl_micros: None,
        })
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = cache(4, EvictionPolicy::Lru);
        assert_eq!(c.get(&key("a"), 0), None);
        c.put(key("a"), "body".into(), 1);
        assert_eq!(c.get(&key("a"), 2), Some("body".into()));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let c = cache(2, EvictionPolicy::Lru);
        c.put(key("a"), "1".into(), 0);
        c.put(key("b"), "2".into(), 1);
        c.get(&key("a"), 2); // a now most recent
        c.put(key("c"), "3".into(), 3); // evicts b
        assert!(c.contains(&key("a")));
        assert!(!c.contains(&key("b")));
        assert!(c.contains(&key("c")));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let c = cache(2, EvictionPolicy::Lfu);
        c.put(key("a"), "1".into(), 0);
        c.put(key("b"), "2".into(), 1);
        c.get(&key("a"), 2);
        c.get(&key("a"), 3);
        c.get(&key("b"), 4);
        c.put(key("c"), "3".into(), 5); // evicts b (1 use < 2 uses)
        assert!(c.contains(&key("a")));
        assert!(!c.contains(&key("b")));
    }

    #[test]
    fn fifo_evicts_oldest_insert() {
        let c = cache(2, EvictionPolicy::Fifo);
        c.put(key("a"), "1".into(), 0);
        c.put(key("b"), "2".into(), 1);
        c.get(&key("a"), 2); // recency must not matter
        c.put(key("c"), "3".into(), 3); // evicts a
        assert!(!c.contains(&key("a")));
        assert!(c.contains(&key("b")));
    }

    #[test]
    fn overwrite_does_not_evict() {
        let c = cache(2, EvictionPolicy::Lru);
        c.put(key("a"), "1".into(), 0);
        c.put(key("b"), "2".into(), 1);
        c.put(key("a"), "1b".into(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key("a"), 3), Some("1b".into()));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn ttl_expires_entries() {
        let c = PageCache::new(PageCacheConfig {
            capacity: 4,
            policy: EvictionPolicy::Lru,
            ttl_micros: Some(100),
        });
        c.put(key("a"), "1".into(), 0);
        assert_eq!(c.get(&key("a"), 50), Some("1".into()));
        assert_eq!(c.get(&key("a"), 200), None, "expired");
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn invalidate_removes_exactly_named_keys() {
        let c = cache(8, EvictionPolicy::Lru);
        for k in ["a", "b", "c"] {
            c.put(key(k), k.into(), 0);
        }
        let removed = c.invalidate([&key("a"), &key("c"), &key("zz")]);
        assert_eq!(removed, 2);
        assert!(!c.contains(&key("a")));
        assert!(c.contains(&key("b")));
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn invalidate_collect_names_resident_keys_only() {
        let c = cache(8, EvictionPolicy::Lru);
        for k in ["a", "b"] {
            c.put(key(k), k.into(), 0);
        }
        let removed = c.invalidate_collect([&key("a"), &key("zz")]);
        assert_eq!(removed, vec![key("a")]);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn wired_metrics_track_cache_stats_exactly() {
        let c = cache(2, EvictionPolicy::Lru);
        let registry = MetricsRegistry::new();
        c.put(key("pre"), "x".into(), 0); // before wiring: seeded at wire time
        c.wire_metrics(&registry, "cache.page");
        assert_eq!(registry.counter_value("cache.page.insertions"), 1);
        assert_eq!(registry.gauge_value("cache.page.resident"), 1);

        c.get(&key("pre"), 1); // hit
        c.get(&key("nope"), 2); // miss
        c.put(key("b"), "2".into(), 3);
        c.put(key("c"), "3".into(), 4); // evicts one
        c.invalidate([&key("c")]);

        let s = c.stats();
        for (name, want) in [
            ("cache.page.hits", s.hits),
            ("cache.page.misses", s.misses),
            ("cache.page.insertions", s.insertions),
            ("cache.page.evictions", s.evictions),
            ("cache.page.invalidations", s.invalidations),
            ("cache.page.expirations", s.expirations),
        ] {
            assert_eq!(registry.counter_value(name), want, "{name}");
        }
        assert_eq!(registry.gauge_value("cache.page.resident"), c.len() as i64);
    }

    #[test]
    fn clear_counts_invalidations() {
        let c = cache(8, EvictionPolicy::Lru);
        c.put(key("a"), "1".into(), 0);
        c.put(key("b"), "2".into(), 0);
        assert_eq!(c.clear(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn evict_admitted_since_flushes_only_newer_pages() {
        let c = cache(8, EvictionPolicy::Lru);
        c.put(key("old"), "1".into(), 10);
        c.put(key("boundary"), "2".into(), 20);
        c.put(key("new"), "3".into(), 30);
        assert_eq!(c.evict_admitted_since(20), 2, "boundary is inclusive");
        assert!(c.contains(&key("old")));
        assert!(!c.contains(&key("boundary")));
        assert!(!c.contains(&key("new")));
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let c = cache(3, EvictionPolicy::Lru);
        for i in 0..50 {
            c.put(key(&format!("k{i}")), "x".into(), i);
            assert!(c.len() <= 3);
        }
    }
}

//! Middle-tier data cache (paper Configuration II; the Oracle 8i
//! "middle-tier data cache" analogue).
//!
//! Caches query *results* at the application server, keyed by the bound SQL
//! text. Freshness is maintained by periodic synchronization: at each sync
//! point the cache pulls the DBMS update log and discards every cached
//! result that touches an updated table — table-level granularity, which is
//! what commercial middle tiers provided and why the paper's invalidator
//! (query-instance granularity) is the interesting comparison point.

use crate::stats::CacheStats;
use cacheportal_db::sql::ast::Statement;
use cacheportal_db::sql::parser::parse;
use cacheportal_db::{DbResult, ExecOutcome, LogRecord, Lsn, QueryResult, Value};
use cacheportal_web::Connection;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Key: bound SQL + rendered parameters.
fn cache_key(sql: &str, params: &[Value]) -> String {
    if params.is_empty() {
        sql.to_string()
    } else {
        let mut k = String::with_capacity(sql.len() + params.len() * 8);
        k.push_str(sql);
        for p in params {
            k.push('\u{1}');
            k.push_str(&p.to_sql_literal());
        }
        k
    }
}

struct DataEntry {
    result: QueryResult,
    /// Lower-cased names of tables the query reads.
    tables: Vec<String>,
}

/// A query-result cache with table-level synchronization.
pub struct DataCache {
    inner: Mutex<DataInner>,
    capacity: usize,
}

struct DataInner {
    map: HashMap<String, DataEntry>,
    /// Insertion order for FIFO eviction (simplest sound policy here).
    order: Vec<String>,
    stats: CacheStats,
    /// Log position consumed so far.
    synced_to: Lsn,
}

impl DataCache {
    /// Create a cache holding up to `capacity` results / wrap a connection.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(DataCache {
            inner: Mutex::new(DataInner {
                map: HashMap::new(),
                order: Vec::new(),
                stats: CacheStats::default(),
                synced_to: 0,
            }),
            capacity,
        })
    }

    /// Cached result for a bound query, if present.
    pub fn get(&self, sql: &str, params: &[Value]) -> Option<QueryResult> {
        let key = cache_key(sql, params);
        let mut inner = self.inner.lock();
        match inner.map.get(&key) {
            Some(e) => {
                let r = e.result.clone();
                inner.stats.hits += 1;
                Some(r)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Store a result. Queries that cannot be parsed (and therefore cannot
    /// be synchronized safely) are not cached.
    pub fn put(&self, sql: &str, params: &[Value], result: QueryResult) {
        let Ok(Statement::Select(sel)) = parse(sql) else {
            return;
        };
        let tables: Vec<String> = sel
            .from
            .iter()
            .map(|t| t.table.to_ascii_lowercase())
            .collect();
        let key = cache_key(sql, params);
        let mut inner = self.inner.lock();
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner.order.first().cloned() {
                inner.map.remove(&victim);
                inner.order.remove(0);
                inner.stats.evictions += 1;
            }
        }
        if inner.map.insert(key.clone(), DataEntry { result, tables }).is_none() {
            inner.order.push(key);
        }
        inner.stats.insertions += 1;
    }

    /// Synchronization point: discard every entry whose FROM list touches a
    /// table named in `records`. Returns the number of discarded entries.
    pub fn synchronize(&self, records: &[LogRecord]) -> usize {
        let touched: HashSet<String> = records
            .iter()
            .map(|r| r.table.to_ascii_lowercase())
            .collect();
        if touched.is_empty() {
            return 0;
        }
        let mut inner = self.inner.lock();
        let doomed: Vec<String> = inner
            .map
            .iter()
            .filter(|(_, e)| e.tables.iter().any(|t| touched.contains(t)))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            inner.map.remove(k);
        }
        inner.order.retain(|k| !doomed.contains(k));
        inner.stats.invalidations += doomed.len() as u64;
        if let Some(max) = records.iter().map(|r| r.lsn).max() {
            inner.synced_to = inner.synced_to.max(max + 1);
        }
        doomed.len()
    }

    /// Log position this cache has consumed.
    pub fn synced_to(&self) -> Lsn {
        self.inner.lock().synced_to
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

/// A [`Connection`] wrapper that consults a [`DataCache`] before the real
/// database — the deployment shape of Configuration II.
pub struct CachingConnection<C: Connection> {
    inner: C,
    cache: Arc<DataCache>,
}

impl<C: Connection> CachingConnection<C> {
    /// Create a cache holding up to `capacity` results / wrap a connection.
    pub fn new(inner: C, cache: Arc<DataCache>) -> Self {
        CachingConnection { inner, cache }
    }
}

impl<C: Connection> Connection for CachingConnection<C> {
    fn query(&mut self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        if let Some(hit) = self.cache.get(sql, params) {
            return Ok(hit);
        }
        let result = self.inner.query(sql, params)?;
        self.cache.put(sql, params, result.clone());
        Ok(result)
    }

    fn execute(&mut self, sql: &str, params: &[Value]) -> DbResult<ExecOutcome> {
        // Updates always go to the real database; the cache learns about
        // them at the next synchronization point (that lag is Conf II's
        // staleness window).
        self.inner.execute(sql, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::Database;
    use cacheportal_web::{shared, DbConnection};

    fn db() -> cacheportal_web::SharedDb {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, price INT)").unwrap();
        db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT)").unwrap();
        db.execute("INSERT INTO Car VALUES ('Toyota', 25000)").unwrap();
        shared(db)
    }

    #[test]
    fn caches_and_hits() {
        let sdb = db();
        let cache = DataCache::new(16);
        let mut conn = CachingConnection::new(DbConnection::new(sdb.clone()), cache.clone());
        let a = conn.query("SELECT * FROM Car", &[]).unwrap();
        let b = conn.query("SELECT * FROM Car", &[]).unwrap();
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn params_distinguish_entries() {
        let sdb = db();
        let cache = DataCache::new(16);
        let mut conn = CachingConnection::new(DbConnection::new(sdb), cache.clone());
        conn.query("SELECT * FROM Car WHERE price < $1", &[Value::Int(10)]).unwrap();
        conn.query("SELECT * FROM Car WHERE price < $1", &[Value::Int(99)]).unwrap();
        assert_eq!(cache.stats().misses, 2, "different params are different keys");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn synchronize_discards_touched_tables_only() {
        let sdb = db();
        let cache = DataCache::new(16);
        let mut conn = CachingConnection::new(DbConnection::new(sdb.clone()), cache.clone());
        conn.query("SELECT * FROM Car", &[]).unwrap();
        conn.query("SELECT * FROM Mileage", &[]).unwrap();
        assert_eq!(cache.len(), 2);

        let hw = sdb.read().high_water();
        sdb.write()
            .execute("INSERT INTO Car VALUES ('Honda', 18000)")
            .unwrap();
        let recs: Vec<LogRecord> = sdb.read().update_log().pull_since(hw).to_vec();
        let dropped = cache.synchronize(&recs);
        assert_eq!(dropped, 1);
        assert_eq!(cache.len(), 1, "Mileage entry survives");
        assert!(cache.get("SELECT * FROM Mileage", &[]).is_some());
        assert!(cache.get("SELECT * FROM Car", &[]).is_none());
    }

    #[test]
    fn stale_until_synchronized() {
        // The Conf II freshness gap: between sync points the cache returns
        // stale results; after synchronize it reflects the update.
        let sdb = db();
        let cache = DataCache::new(16);
        let mut conn = CachingConnection::new(DbConnection::new(sdb.clone()), cache.clone());
        let before = conn.query("SELECT * FROM Car", &[]).unwrap();
        sdb.write()
            .execute("INSERT INTO Car VALUES ('Honda', 18000)")
            .unwrap();
        let stale = conn.query("SELECT * FROM Car", &[]).unwrap();
        assert_eq!(before, stale, "still served from cache");
        let recs: Vec<LogRecord> = sdb.read().update_log().pull_since(0).to_vec();
        cache.synchronize(&recs);
        let fresh = conn.query("SELECT * FROM Car", &[]).unwrap();
        assert_eq!(fresh.rows.len(), 2);
    }

    #[test]
    fn capacity_fifo_eviction() {
        let cache = DataCache::new(2);
        let r = QueryResult {
            columns: vec!["a".into()],
            rows: vec![],
        };
        cache.put("SELECT a FROM Car WHERE a = 1", &[], r.clone());
        cache.put("SELECT a FROM Car WHERE a = 2", &[], r.clone());
        cache.put("SELECT a FROM Car WHERE a = 3", &[], r.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.get("SELECT a FROM Car WHERE a = 1", &[]).is_none());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn unparseable_sql_is_not_cached() {
        let cache = DataCache::new(4);
        let r = QueryResult {
            columns: vec![],
            rows: vec![],
        };
        cache.put("TOTALLY NOT SQL", &[], r);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn executes_pass_through() {
        let sdb = db();
        let cache = DataCache::new(4);
        let mut conn = CachingConnection::new(DbConnection::new(sdb.clone()), cache);
        conn.execute("INSERT INTO Car VALUES ('Ford', 30000)", &[]).unwrap();
        assert_eq!(
            sdb.write().query("SELECT * FROM Car").unwrap().rows.len(),
            2
        );
    }
}

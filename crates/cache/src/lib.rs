#![warn(missing_docs)]

//! # cacheportal-cache
//!
//! Cache substrates for the CachePortal reproduction:
//!
//! * [`page_cache::PageCache`] — the dynamic web-page cache of
//!   Configuration III, honouring eject-style invalidation messages, with
//!   LRU/LFU/FIFO eviction and optional TTL (the time-based-refresh baseline).
//! * [`data_cache::DataCache`] — the middle-tier query-result cache of
//!   Configuration II, synchronized at table-level granularity from the
//!   database update log.

pub mod data_cache;
pub mod page_cache;
pub mod stats;

pub use data_cache::{CachingConnection, DataCache};
pub use page_cache::{EvictionPolicy, PageCache, PageCacheConfig};
pub use stats::CacheStats;

//! Shared cache statistics.

/// Counters kept by both the page cache and the data cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries removed by capacity pressure.
    pub evictions: u64,
    /// Entries removed by invalidation messages.
    pub invalidations: u64,
    /// Entries removed by TTL expiry.
    pub expirations: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups so far (0 when no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
        let s = CacheStats {
            hits: 7,
            misses: 3,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(s.lookups(), 10);
    }
}

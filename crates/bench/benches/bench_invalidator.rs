//! Invalidator throughput benchmarks: cost of one synchronization point as
//! the number of registered query instances and the update-batch size grow
//! (§4's "the invalidator must not be a bottleneck" claim), for each policy.

use cacheportal_db::Database;
use cacheportal_invalidator::{InvalidationPolicy, Invalidator, InvalidatorConfig, QueryTypeId};
use cacheportal_sniffer::QiUrlMap;
use cacheportal_web::PageKey;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    for i in 0..2000 {
        db.insert_row(
            "Car",
            vec![
                format!("maker{}", i % 40).into(),
                format!("model{}", i % 200).into(),
                (10_000 + (i % 100) as i64 * 500).into(),
            ],
        )
        .unwrap();
        if i < 200 {
            db.insert_row(
                "Mileage",
                vec![format!("model{i}").into(), (20.0 + (i % 20) as f64).into()],
            )
            .unwrap();
        }
    }
    db
}

/// Register `n` join-query instances (distinct price bounds) in the map.
fn seeded_map(n: usize) -> QiUrlMap {
    let map = QiUrlMap::new();
    for i in 0..n {
        map.insert(
            format!(
                "SELECT Car.maker FROM Car, Mileage \
                 WHERE Car.model = Mileage.model AND Car.price < {}",
                10_000 + i * 97
            ),
            PageKey::raw(format!("page{i}")),
            "cars".to_string(),
        );
    }
    map
}

fn sync_point_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("invalidator_sync_point");
    for &instances in &[10usize, 100, 500] {
        for (policy, label) in [
            (InvalidationPolicy::Exact, "exact"),
            (InvalidationPolicy::Conservative, "conservative"),
            (InvalidationPolicy::TableLevel, "table_level"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, instances),
                &instances,
                |b, &instances| {
                    b.iter_batched(
                        || {
                            let mut db = example_db();
                            let map = seeded_map(instances);
                            let mut inv = Invalidator::new(InvalidatorConfig::default());
                            inv.start_from(db.high_water());
                            // First run registers the instances.
                            inv.run_sync_point(&db, &map).unwrap();
                            for i in 0..inv.registry().types().len() {
                                inv.set_policy(QueryTypeId(i as u32), policy);
                            }
                            // One update batch to analyze.
                            for j in 0..10 {
                                db.execute(&format!(
                                    "INSERT INTO Car VALUES ('m','model{}',{})",
                                    j * 13,
                                    12_000 + j * 100
                                ))
                                .unwrap();
                            }
                            (db, map, inv)
                        },
                        |(db, map, mut inv)| {
                            black_box(inv.run_sync_point(&db, &map).unwrap())
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn registration_cost(c: &mut Criterion) {
    c.bench_function("invalidator_register_500_instances", |b| {
        b.iter_batched(
            || (example_db(), seeded_map(500)),
            |(db, map)| {
                let mut inv = Invalidator::new(InvalidatorConfig::default());
                inv.start_from(db.high_water());
                black_box(inv.run_sync_point(&db, &map).unwrap())
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn maintained_index_benefit(c: &mut Criterion) {
    let mut group = c.benchmark_group("invalidator_index_ablation");
    for with_index in [false, true] {
        let label = if with_index { "with_index" } else { "without_index" };
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut db = example_db();
                    let map = seeded_map(200);
                    let mut inv = Invalidator::new(InvalidatorConfig::default());
                    inv.start_from(db.high_water());
                    if with_index {
                        inv.maintain_index(&db, "Mileage", "model").unwrap();
                    }
                    inv.run_sync_point(&db, &map).unwrap();
                    for j in 0..10 {
                        db.execute(&format!(
                            "INSERT INTO Car VALUES ('m','nomatch{j}',11000)"
                        ))
                        .unwrap();
                    }
                    (db, map, inv)
                },
                |(db, map, mut inv)| {
                    black_box(inv.run_sync_point(&db, &map).unwrap())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sync_point_cost, registration_cost, maintained_index_benefit
}
criterion_main!(benches);

//! Sniffer benchmarks: mapper cost vs. log volume and request concurrency
//! (Fig E5). The sniffer "has to run as fast as the web server" (§2.4) —
//! these benches quantify the interval-containment join.

use cacheportal_db::Value;
use cacheportal_sniffer::{Mapper, QiUrlMap, QueryLog, RequestLog};
use cacheportal_web::{PageKey, RequestObserver, RequestRecord};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// Build logs with `n` requests, `overlap` controlling how many request
/// windows each query falls into (1 = serial, k = k-way concurrency).
fn build_logs(n: usize, overlap: u64) -> (Arc<RequestLog>, Arc<QueryLog>) {
    let rl = Arc::new(RequestLog::new());
    let ql = QueryLog::new();
    for i in 0..n as u64 {
        let start = i * 10;
        let end = start + 10 * overlap; // windows overlap `overlap` deep
        rl.on_request(RequestRecord {
            id: i,
            servlet: "s".into(),
            request_string: format!("/s?i={i}"),
            cookie_string: String::new(),
            post_string: String::new(),
            page_key: PageKey::raw(format!("p{i}")),
            received: start,
            delivered: end,
        });
        ql.record(
            "SELECT * FROM Car WHERE price < $1",
            &[Value::Int(i as i64)],
            true,
            start + 2,
            start + 4,
        );
    }
    (rl, ql)
}

fn mapper_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sniffer_mapper");
    for &n in &[100usize, 1000] {
        for &overlap in &[1u64, 4, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("overlap{overlap}"), n),
                &(n, overlap),
                |b, &(n, overlap)| {
                    b.iter_batched(
                        || {
                            let (rl, ql) = build_logs(n, overlap);
                            let map = Arc::new(QiUrlMap::new());
                            Mapper::new(rl, ql, map)
                        },
                        |mut mapper| black_box(mapper.run_once()),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn canonicalization(c: &mut Criterion) {
    let record = cacheportal_sniffer::QueryRecord {
        id: 1,
        sql: "SELECT Car.maker, Car.model FROM Car, Mileage \
              WHERE Car.model = Mileage.model AND Car.price < $1"
            .into(),
        params: vec![Value::Int(20_000)],
        is_select: true,
        received: 0,
        delivered: 1,
    };
    c.bench_function("sniffer_canonical_bound_sql", |b| {
        b.iter(|| black_box(cacheportal_sniffer::canonical_bound_sql(black_box(&record))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = mapper_throughput, canonicalization
}
criterion_main!(benches);

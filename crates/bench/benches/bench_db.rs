//! Microbenchmarks for the relational engine substrate: the paper's three
//! query classes (§5.2.1) plus parse/plan costs and DML.

use cacheportal_bench::ablation::paper_application;
use cacheportal_db::sql::parser::parse;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let db = paper_application(11);
    let mut group = c.benchmark_group("db_queries");

    group.bench_function("light_select_small_indexed", |b| {
        b.iter(|| {
            black_box(
                db.query("SELECT id, val FROM small WHERE grp = 3 ORDER BY id")
                    .unwrap(),
            )
        })
    });
    group.bench_function("medium_select_large_indexed", |b| {
        b.iter(|| {
            black_box(
                db.query("SELECT id, val FROM large WHERE grp = 3 ORDER BY id")
                    .unwrap(),
            )
        })
    });
    group.bench_function("heavy_join", |b| {
        b.iter(|| {
            black_box(
                db.query(
                    "SELECT small.id, small.val, large.id FROM small, large \
                     WHERE small.grp = 3 AND small.val = large.val",
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("aggregate_group_by", |b| {
        b.iter(|| {
            black_box(
                db.query("SELECT grp, COUNT(*), AVG(val) FROM large GROUP BY grp")
                    .unwrap(),
            )
        })
    });
    group.bench_function("polling_count_query", |b| {
        b.iter(|| {
            black_box(
                db.query("SELECT COUNT(*) FROM large WHERE val = 512")
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let sql = "SELECT Car.maker, Car.model, Car.price, Mileage.EPA \
               FROM Car, Mileage \
               WHERE Car.model = Mileage.model AND Car.price < $1 \
               ORDER BY Car.price DESC LIMIT 20";
    c.bench_function("db_parse_join_query", |b| {
        b.iter(|| black_box(parse(black_box(sql)).unwrap()))
    });
}

fn bench_prepared(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_prepared");
    let mut db = paper_application(23);
    let sql = "SELECT id, val FROM small WHERE grp = $1 ORDER BY id";
    let prepared = db.prepare(sql).unwrap();
    group.bench_function("parse_every_time", |b| {
        b.iter(|| {
            black_box(
                db.query_with_params(sql, &[cacheportal_db::Value::Int(3)])
                    .unwrap(),
            )
        })
    });
    group.bench_function("prepared_once", |b| {
        b.iter(|| {
            black_box(
                db.execute_prepared(&prepared, &[cacheportal_db::Value::Int(3)])
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_range_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_range_scan");
    // Same data with and without an ordered index on `val`.
    let build = |with_index: bool| {
        let mut db = cacheportal_db::Database::new();
        let ddl = if with_index {
            "CREATE TABLE t (id INT, val INT, RANGE INDEX(val))"
        } else {
            "CREATE TABLE t (id INT, val INT)"
        };
        db.execute(ddl).unwrap();
        for i in 0..5000i64 {
            db.insert_row("t", vec![i.into(), ((i * 37) % 5000).into()])
                .unwrap();
        }
        db
    };
    let with_ix = build(true);
    let without = build(false);
    let q = "SELECT id FROM t WHERE val < 100";
    group.bench_function("with_range_index", |b| {
        b.iter(|| black_box(with_ix.query(q).unwrap()))
    });
    group.bench_function("seq_scan", |b| {
        b.iter(|| black_box(without.query(q).unwrap()))
    });
    group.finish();
}

fn bench_dml(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_dml");
    group.bench_function("insert_delete_round_trip", |b| {
        let mut db = paper_application(13);
        b.iter(|| {
            db.execute("INSERT INTO small VALUES (99999, 5, 123)").unwrap();
            db.execute("DELETE FROM small WHERE id = 99999").unwrap();
        })
    });
    group.bench_function("update_indexed_predicate", |b| {
        let mut db = paper_application(17);
        b.iter(|| {
            db.execute("UPDATE small SET val = (val + 1) WHERE grp = 4")
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queries, bench_parse, bench_dml, bench_prepared, bench_range_index
}
criterion_main!(benches);

//! Page-cache and data-cache microbenchmarks: lookup/insert/invalidate
//! throughput under each eviction policy.

use cacheportal_cache::{DataCache, EvictionPolicy, PageCache, PageCacheConfig};
use cacheportal_db::QueryResult;
use cacheportal_web::PageKey;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn page_cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_cache");
    for policy in [EvictionPolicy::Lru, EvictionPolicy::Lfu, EvictionPolicy::Fifo] {
        group.bench_with_input(
            BenchmarkId::new("churn", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let cache = PageCache::new(PageCacheConfig {
                    capacity: 512,
                    policy,
                    ttl_micros: None,
                });
                let keys: Vec<PageKey> =
                    (0..2048).map(|i| PageKey::raw(format!("k{i}"))).collect();
                let mut i = 0usize;
                b.iter(|| {
                    let k = &keys[i % keys.len()];
                    if cache.get(k, i as u64).is_none() {
                        cache.put(k.clone(), "body".into(), i as u64);
                    }
                    i += 1;
                })
            },
        );
    }
    group.bench_function("invalidate_batch_of_64", |b| {
        b.iter_batched(
            || {
                let cache = PageCache::new(PageCacheConfig::default());
                let keys: Vec<PageKey> =
                    (0..64).map(|i| PageKey::raw(format!("k{i}"))).collect();
                for k in &keys {
                    cache.put(k.clone(), "body".into(), 0);
                }
                (cache, keys)
            },
            |(cache, keys)| black_box(cache.invalidate(keys.iter())),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn data_cache_ops(c: &mut Criterion) {
    c.bench_function("data_cache_get_put", |b| {
        let cache = DataCache::new(256);
        let result = QueryResult {
            columns: vec!["a".into()],
            rows: vec![vec![cacheportal_db::Value::Int(1)]],
        };
        let mut i = 0u64;
        b.iter(|| {
            let sql = format!("SELECT a FROM t WHERE a = {}", i % 512);
            if cache.get(&sql, &[]).is_none() {
                cache.put(&sql, &[], result.clone());
            }
            i += 1;
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = page_cache_ops, data_cache_ops
}
criterion_main!(benches);

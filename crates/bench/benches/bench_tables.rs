//! Criterion wrappers around the Table 2 / Table 3 simulation grids and the
//! functional end-to-end request path, so `cargo bench` alone exercises the
//! paper's experiments (short horizons; the binaries run the full grids).

use cacheportal_bench::ablation::{paper_application, register_paper_servlets};
use cacheportal_sim::{
    simulate, Conf2CacheAccess, Configuration, SimParams, UpdateRate, SEC,
};
use cacheportal::CachePortal;
use cacheportal_web::HttpRequest;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_sim");
    group.sample_size(10);
    for conf in Configuration::ALL {
        for rate in [UpdateRate::NONE, UpdateRate::HIGH] {
            let id = format!("{}_{}", conf.label().replace(". ", ""), rate.label());
            group.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(conf, rate),
                |b, &(conf, rate)| {
                    let params = SimParams::paper_baseline()
                        .with_duration(15 * SEC)
                        .with_update_rate(rate);
                    b.iter(|| black_box(simulate(conf, &params)))
                },
            );
        }
    }
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_sim");
    group.sample_size(10);
    group.bench_function("ConfII_LocalDbms_NoUpdates", |b| {
        let params = SimParams::paper_baseline()
            .with_duration(15 * SEC)
            .with_conf2_access(Conf2CacheAccess::LocalDbms);
        b.iter(|| black_box(simulate(Configuration::MiddleTierCache, &params)))
    });
    group.finish();
}

fn bench_functional_request_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_request");
    let portal = CachePortal::builder(paper_application(3)).build().unwrap();
    register_paper_servlets(&portal);
    let req = HttpRequest::get("shop", "/medium", &[("grp", "4")]);
    // Warm the cache.
    portal.request(&req);
    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(portal.request(&req)))
    });
    group.bench_function("generate_medium_page", |b| {
        let miss_req = HttpRequest::get("shop", "/medium", &[("grp", "5")]);
        b.iter(|| {
            portal.page_cache().invalidate([&cacheportal_web::PageKey::for_request(
                &miss_req,
                &cacheportal_web::ServletSpec::new("medium").with_key_get_params(&["grp"]),
            )]);
            black_box(portal.request(&miss_req))
        })
    });
    group.bench_function("sync_point_with_updates", |b| {
        let mut i = 0i64;
        b.iter(|| {
            portal
                .update(&format!("INSERT INTO small VALUES ({}, 3, 7)", 50_000 + i))
                .unwrap();
            i += 1;
            black_box(portal.sync_point().unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_table2, bench_table3, bench_functional_request_path
}
criterion_main!(benches);

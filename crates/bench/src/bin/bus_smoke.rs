//! End-to-end smoke of the real-socket bus transport on localhost: two
//! edge caches behind `EdgeServer` TCP listeners, driven by an
//! `InvalidationBus` over `SocketTransport`. Exercises the full wire
//! contract — delivery + ack, idempotent duplicate absorption, partition
//! detection against a dead listener, and watermark catch-up after the
//! listener comes back on the same port.
//!
//! Prints greppable `bus-smoke:` markers and exits 0 only if every stage
//! holds, so `verify.sh` can gate on it.

use cacheportal::bus::socket::{EdgeServer, SocketTransport};
use cacheportal::bus::{BusConfig, BusTransport, EdgeEndpoint, EjectBatch, InvalidationBus};
use cacheportal::cache::{PageCache, PageCacheConfig};
use cacheportal::db::FaultPlan;
use cacheportal::web::PageKey;
use std::sync::Arc;

fn fail(msg: &str) -> ! {
    eprintln!("BUS-SMOKE FAIL: {msg}");
    std::process::exit(1);
}

fn check(cond: bool, msg: &str) {
    if !cond {
        fail(msg);
    }
}

fn key(s: &str) -> PageKey {
    PageKey::raw(s)
}

fn seeded_cache() -> Arc<PageCache> {
    let cache = Arc::new(PageCache::new(PageCacheConfig::default()));
    cache.put(key("a"), "page-a".into(), 1);
    cache.put(key("b"), "page-b".into(), 1);
    cache
}

fn main() {
    // Stage 1: two live edges over real sockets, one delivered batch.
    let caches = [seeded_cache(), seeded_cache()];
    let endpoints: Vec<Arc<EdgeEndpoint>> = caches
        .iter()
        .enumerate()
        .map(|(i, c)| Arc::new(EdgeEndpoint::new(format!("edge-{i}"), c.clone(), 0)))
        .collect();
    let servers: Vec<EdgeServer> = endpoints
        .iter()
        .map(|e| EdgeServer::serve("127.0.0.1:0", e.clone()).unwrap_or_else(|e| {
            fail(&format!("bind edge listener: {e}"));
        }))
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    let transport = Arc::new(SocketTransport::new(addrs.clone()));
    let bus = InvalidationBus::new(
        BusConfig {
            max_attempts: 2,
            partition_after: 2,
            ..BusConfig::default()
        },
        transport.clone(),
        FaultPlan::none(),
    );
    for (i, _) in endpoints.iter().enumerate() {
        bus.register_remote_edge(&format!("edge-{i}"), 0);
    }

    bus.publish(1, 10, vec![key("a")]);
    let report = bus.deliver_all(10);
    check(report.deliveries_ok == 2, "both edges must ack batch 1");
    for (i, cache) in caches.iter().enumerate() {
        check(!cache.contains(&key("a")), "delivered eject must land");
        let row = &bus.edge_rows()[i];
        check(row.acked == 1 && row.lag == 0, "edge must be caught up");
    }
    println!("bus-smoke: delivery ok (2 edges acked seq 1 over TCP)");

    // Stage 2: redeliver batch 1 over the wire — absorbed idempotently.
    let dup = EjectBatch {
        seq: 1,
        sync_seq: 1,
        ts: 10,
        pages: vec![key("a")],
    };
    match BusTransport::deliver(transport.as_ref(), 0, &dup, 1) {
        Ok(ack) => check(ack.applied_seq == 1, "duplicate must re-ack seq 1"),
        Err(_) => fail("duplicate redelivery must succeed"),
    }
    check(
        endpoints[0].counters().absorbed_duplicates == 1,
        "edge must count the absorbed duplicate",
    );
    println!("bus-smoke: duplicate absorbed idempotently");

    // Stage 3: kill edge-1's listener; the bus must mark it partitioned
    // while edge-0 keeps renewing.
    let mut servers = servers;
    servers.pop().unwrap().shutdown();
    bus.publish(2, 20, vec![key("b")]);
    bus.deliver_all(20);
    let report = bus.deliver_all(21);
    check(
        report.newly_partitioned == vec!["edge-1".to_string()],
        "dead listener must be detected as partitioned",
    );
    check(bus.partitioned_count() == 1, "exactly one partitioned edge");
    let rows = bus.edge_rows();
    check(rows[0].lag == 0, "live edge must stay current");
    check(rows[1].lag > 0, "dead edge must lag");
    check(caches[1].contains(&key("b")), "undelivered eject still cached");
    println!("bus-smoke: partition detected (edge-1 lag {})", rows[1].lag);

    // Stage 4: bring the listener back on the same port; the next round
    // replays everything past the acked watermark.
    let revived = EdgeServer::serve(&addrs[1].to_string(), endpoints[1].clone())
        .unwrap_or_else(|e| fail(&format!("rebind edge listener: {e}")));
    let report = bus.deliver_all(30);
    check(report.healed.contains(&"edge-1".to_string()), "edge must heal");
    let rows = bus.edge_rows();
    check(
        rows[1].acked == 2 && rows[1].lag == 0,
        "healed edge must catch up to the watermark",
    );
    check(!caches[1].contains(&key("b")), "catch-up must apply the eject");
    check(bus.partitioned_count() == 0, "no partitioned edges after heal");
    println!("bus-smoke: catch-up ok (edge-1 acked seq 2 after rebind)");

    revived.shutdown();
    for s in servers {
        s.shutdown();
    }
    println!("BUS-SMOKE PASS");
}

//! Regenerate **Table 2** of the paper: average response times (ms) for the
//! three configurations under three update loads, with negligible
//! middle-tier cache access cost in Configuration II.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin table2
//! ```

use cacheportal_bench::tables::{format_table, run_table};
use cacheportal_bench::write_artifact;
use cacheportal_sim::{Conf2CacheAccess, SimParams};

fn main() {
    let params = SimParams::paper_baseline();
    let table = run_table("table2", Conf2CacheAccess::Negligible, &params);
    println!(
        "Table 2: average response times (ms), 30 req/s (10 light / 10 medium / 10 heavy),\n\
         70% cache hit ratio, negligible middle-tier cache access cost in Conf. II\n"
    );
    println!("{}", format_table(&table));
    match write_artifact("table2", &table) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    println!(
        "\nPaper reference (Table 2, exp. resp. ms):\n\
         \u{2022} Conf I : 40775 / 41638 / 45443   (overloaded, tens of seconds)\n\
         \u{2022} Conf II : 471 / 672 / 1147\n\
         \u{2022} Conf III: 450 / 532 / 916        (\u{2248}20% below Conf II at <12,12,12,12>)"
    );
}

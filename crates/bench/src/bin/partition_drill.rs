//! Scripted partition drill against a live portal: partition one edge's
//! bus link, watch `/healthz` report it, verify the edge degrades to the
//! conservative empty state (TTL/Vcache-style — never stale), heal the
//! link, and confirm watermark catch-up leaves the drilled edge holding a
//! byte-identical page set to the untouched control edge.
//!
//! Prints greppable `partition-drill:` markers and exits 0 only if every
//! stage holds, so `verify.sh` can gate on it.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::cache::{PageCache, PageCacheConfig};
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::CachePortal;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const CONTROL: usize = 0;
const DRILLED: usize = 1;
const GROUPS: i64 = 4;

fn fail(msg: &str) -> ! {
    eprintln!("PARTITION-DRILL FAIL: {msg}");
    std::process::exit(1);
}

fn check(cond: bool, msg: &str) {
    if !cond {
        fail(msg);
    }
}

fn portal() -> CachePortal {
    let mut db = Database::new();
    db.execute("CREATE TABLE Items (g INT, v INT, INDEX(g))").expect("schema");
    for g in 0..GROUPS {
        db.execute(&format!("INSERT INTO Items VALUES ({g}, {})", 10 + g)).expect("seed");
    }
    let p = CachePortal::builder(db).build().expect("portal");
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("items").with_key_get_params(&["g"]),
        "Items by group",
        vec![QueryTemplate::new(
            "SELECT v FROM Items WHERE g = $1 ORDER BY v",
            vec![ParamSource::Get("g".into(), ColType::Int)],
        )],
    )));
    p
}

fn req(g: i64) -> HttpRequest {
    HttpRequest::get("shop", "/items", &[("g", &g.to_string())])
}

/// Read every group so regenerated pages are admitted (and mirrored to
/// every healthy edge).
fn read_all(p: &CachePortal) {
    for g in 0..GROUPS {
        p.request(&req(g));
    }
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let run = || -> std::io::Result<(u16, String)> {
        let mut stream = TcpStream::connect(addr)?;
        write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let code = raw.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        Ok((code, body))
    };
    run().unwrap_or_else(|e| fail(&format!("GET {path}: {e}")))
}

/// The edge's full page set, sorted for a deterministic byte compare.
fn page_set(cache: &PageCache) -> Vec<(String, String)> {
    let mut pages: Vec<(String, String)> = cache
        .keys()
        .into_iter()
        .map(|k| {
            let body = cache.get(&k, 0).unwrap_or_default();
            (format!("{k:?}"), body)
        })
        .collect();
    pages.sort();
    pages
}

fn main() {
    let p = portal();
    let edges: Vec<Arc<PageCache>> = (0..2)
        .map(|_| Arc::new(PageCache::new(PageCacheConfig::default())))
        .collect();
    for e in &edges {
        p.register_edge_cache(e.clone());
    }
    let admin = p.serve_admin("127.0.0.1:0").expect("bind admin");
    let addr = admin.addr().to_string();

    // Stage 1: warm both edges through the normal admission mirror.
    read_all(&p);
    p.sync_point().expect("sync");
    check(edges[CONTROL].len() == GROUPS as usize, "control edge must be warm");
    check(
        page_set(&edges[DRILLED]) == page_set(&edges[CONTROL]),
        "edges must start identical",
    );
    let (code, body) = http_get(&addr, "/healthz");
    check(code == 200 && !body.contains("edge-partitioned"), "healthz must start clean");
    println!("partition-drill: warm ({} pages on each edge)", edges[CONTROL].len());

    // Stage 2: cut the drilled edge's link, then push invalidations
    // through. The first missed round degrades the edge (lease_rounds=0
    // default: conservative self-ejection, never staleness); the second
    // consecutive failure marks it partitioned.
    p.partition_edge(DRILLED, true);
    for round in 0..2 {
        p.advance_clock(1_000);
        p.update(&format!("UPDATE Items SET v = {} WHERE g = 0", 100 + round))
            .expect("update");
        p.sync_point().expect("sync");
        read_all(&p);
    }
    check(
        edges[DRILLED].is_empty(),
        "partitioned edge must self-eject to empty (degraded) — stale pages are not an option",
    );
    check(edges[CONTROL].len() == GROUPS as usize, "control edge must stay warm");
    let rows = p.bus().edge_rows();
    check(rows[DRILLED].partitioned, "bus must mark the drilled edge partitioned");
    check(rows[DRILLED].lag > 0, "drilled edge must lag the published watermark");
    check(rows[CONTROL].lag == 0, "control edge must be caught up");
    let (code, body) = http_get(&addr, "/healthz");
    check(
        code == 200,
        "a partitioned edge degrades the portal, it does not make it unhealthy",
    );
    check(
        body.contains("edge-partitioned"),
        "healthz must report the partitioned edge",
    );
    println!(
        "partition-drill: degraded (edge-{DRILLED} partitioned, lag {}, self-ejected to empty; healthz says edge-partitioned)",
        rows[DRILLED].lag
    );

    // Stage 3: heal the link; the next sync's delivery round replays every
    // batch past the acked watermark and the edge rejoins admission.
    p.partition_edge(DRILLED, false);
    p.advance_clock(1_000);
    p.update("UPDATE Items SET v = 200 WHERE g = 1").expect("update");
    p.sync_point().expect("sync");
    let rows = p.bus().edge_rows();
    check(!rows[DRILLED].partitioned, "healed edge must clear the partition mark");
    check(rows[DRILLED].lag == 0, "healed edge must catch up to the watermark");
    check(!rows[DRILLED].degraded, "healed edge must leave degraded mode");
    let (_, body) = http_get(&addr, "/healthz");
    check(!body.contains("edge-partitioned"), "healthz must clear after the heal");
    println!(
        "partition-drill: healed (edge-{DRILLED} acked seq {} / latest {})",
        rows[DRILLED].acked,
        p.bus().latest_seq()
    );

    // Stage 4: touch every group (admission mirrors only on generation,
    // not on portal cache hits) and replay the read workload; the drilled
    // edge must end byte-identical to the control.
    p.advance_clock(1_000);
    for g in 0..GROUPS {
        p.update(&format!("UPDATE Items SET v = {} WHERE g = {g}", 300 + g)).expect("update");
    }
    p.sync_point().expect("sync");
    read_all(&p);
    let control = page_set(&edges[CONTROL]);
    let drilled = page_set(&edges[DRILLED]);
    check(control.len() == GROUPS as usize, "control edge must hold every page");
    check(
        drilled == control,
        "drilled edge must converge to a byte-identical page set",
    );
    check(p.stale_pages().is_empty(), "no cached page may differ from regeneration");
    println!(
        "partition-drill: converged ({} pages byte-identical on both edges)",
        control.len()
    );

    admin.shutdown();
    println!("PARTITION-DRILL PASS");
}

//! **Fig E1** (paper §5.1.1, prose): expected response time vs. update rate
//! for Configurations II and III. The paper reports the II→III gap growing
//! with the update rate, reaching ≈20% at ~50 tuple-updates/s.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin sweep_updates
//! ```

use cacheportal_bench::tables::{format_sweep, sweep_update_rate};
use cacheportal_bench::write_artifact;
use cacheportal_sim::SimParams;

fn main() {
    let params = SimParams::paper_baseline();
    // Per-table per-op rates; total rate = 4×value.
    let steps = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0];
    let points = sweep_update_rate(&params, &steps);
    println!("Fig E1: expected response vs. total update rate (tuples/s)\n");
    println!("{}", format_sweep(&points, "updates/s"));

    // Gap summary.
    println!("gap (Conf II vs Conf III expected response):");
    for chunk in points.chunks(2) {
        if let [ii, iii] = chunk {
            if let (Some(a), Some(b)) = (ii.exp_resp_ms, iii.exp_resp_ms) {
                println!(
                    "  {:>5.0} upd/s: II={a:7.0} ms, III={b:7.0} ms, III is {:.1}% faster",
                    ii.x,
                    (a - b) / a * 100.0
                );
            }
        }
    }
    match write_artifact("sweep_updates", &points) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}

//! SLO-engine overhead A/B benchmark: replays the identical portal
//! workload (cache hits and misses, backend updates, sync points) twice —
//! once with the freshness SLO engine armed (windowed counters fed on
//! every request and sync, burn-rate evaluation each sync point, flight
//! recorder ready) and once with it disabled — and reports the wall-clock
//! cost of leaving the contract watched. Acceptance target: ≤5% median
//! overhead.
//!
//! The enabled arm runs the whole subsystem, not a subset: the default
//! policy's five objectives, both burn-rate window pairs, the health
//! reason gauges, and an armed (but quiescent — the default policy never
//! fires on this workload) flight recorder.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin slo_overhead            # full
//! cargo run --release -p cacheportal-bench --bin slo_overhead -- --smoke # CI
//! ```
//!
//! Appends one run record to the `BENCH_slo_overhead.json` trajectory
//! (`{"history": [...]}`) in the working directory.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::CachePortal;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Deterministic xorshift generator: both arms replay the identical
/// request/update sequence.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Workload {
    /// Requests per iteration.
    requests: u64,
    /// Updates per iteration.
    updates: u64,
    /// Actions between sync points.
    sync_every: u64,
    /// A/B iterations (median reported).
    iterations: usize,
}

#[derive(Serialize, Debug)]
struct Artifact {
    smoke: bool,
    requests: u64,
    updates: u64,
    sync_points: u64,
    iterations: usize,
    disabled_secs_median: f64,
    enabled_secs_median: f64,
    overhead_pct: f64,
    target_pct: f64,
    within_target: bool,
}

fn seed_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    for i in 0..64u64 {
        db.execute(&format!(
            "INSERT INTO Car VALUES ('Maker{m}','Model{i}',{p})",
            m = i % 8,
            p = 10_000 + i * 500
        ))
        .unwrap();
        db.execute(&format!("INSERT INTO Mileage VALUES ('Model{i}', {e}.0)", e = 20 + i % 20))
            .unwrap();
    }
    db
}

fn portal(slo: bool, flight_dir: &std::path::Path) -> CachePortal {
    let p = CachePortal::builder(seed_db())
        .flight_dir(flight_dir.to_path_buf())
        .build()
        .unwrap();
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    )));
    p.obs().slo.set_enabled(slo);
    p
}

/// One full replay; returns (wall seconds, sync points driven).
fn run_once(slo: bool, w: &Workload, flight_dir: &std::path::Path) -> (f64, u64) {
    let p = portal(slo, flight_dir);
    let mut rng = Rng(0x00c0ffee_d15ea5e5);
    let mut syncs = 0u64;
    let started = Instant::now();
    let mut actions = 0u64;
    let total = w.requests + w.updates;
    let mut requests_left = w.requests;
    let mut updates_left = w.updates;
    for _ in 0..total {
        // Interleave deterministically, requests-heavy.
        let do_request = if updates_left == 0 {
            true
        } else if requests_left == 0 {
            false
        } else {
            rng.below(8) != 0
        };
        if do_request {
            // 16 distinct pages: repeats hit the cache between syncs.
            let maxprice = 12_000 + rng.below(16) * 2_000;
            let req = HttpRequest::get(
                "shop.example.com",
                "/carSearch",
                &[("maxprice", &maxprice.to_string())],
            );
            p.request(&req);
            requests_left -= 1;
        } else {
            let i = rng.below(64);
            p.update(&format!(
                "UPDATE Car SET price = {p} WHERE model = 'Model{i}'",
                p = 10_000 + rng.below(64) * 500
            ))
            .unwrap();
            updates_left -= 1;
        }
        actions += 1;
        if actions.is_multiple_of(w.sync_every) {
            p.sync_point().unwrap();
            syncs += 1;
        }
    }
    p.sync_point().unwrap();
    syncs += 1;
    let elapsed = started.elapsed().as_secs_f64();
    // Sanity: the production policy must stay quiet on a healthy workload —
    // a firing default policy would mean the overhead numbers measure
    // flight-record dumps, not steady-state accounting.
    if slo {
        let (fast, slow) = p.obs().slo.firing_counts();
        assert_eq!((fast, slow), (0, 0), "default policy fired on a healthy workload");
    }
    (elapsed, syncs)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let w = if smoke {
        Workload { requests: 400, updates: 80, sync_every: 24, iterations: 3 }
    } else {
        Workload { requests: 8_000, updates: 1_600, sync_every: 48, iterations: 7 }
    };

    println!(
        "slo_overhead: {} requests + {} updates, sync every {} actions, {} iterations{}",
        w.requests,
        w.updates,
        w.sync_every,
        w.iterations,
        if smoke { " (smoke)" } else { "" }
    );

    let flight_dir = std::env::temp_dir().join(format!("cp-slo-bench-{}", std::process::id()));
    std::fs::create_dir_all(&flight_dir).expect("flight dir");

    // Warm-up pass per arm (page-cache allocator, lazy statics) kept out of
    // the measurement, then alternate arms so drift hits both equally.
    run_once(false, &w, &flight_dir);
    run_once(true, &w, &flight_dir);
    let mut off = Vec::with_capacity(w.iterations);
    let mut on = Vec::with_capacity(w.iterations);
    let mut syncs = 0u64;
    for i in 0..w.iterations {
        let (t_off, s) = run_once(false, &w, &flight_dir);
        let (t_on, _) = run_once(true, &w, &flight_dir);
        syncs = s;
        off.push(t_off);
        on.push(t_on);
        println!("  iter {i}: disabled {t_off:.4}s, enabled {t_on:.4}s");
    }
    let _ = std::fs::remove_dir_all(&flight_dir);
    let off_med = median(&mut off);
    let on_med = median(&mut on);
    let overhead_pct = (on_med - off_med) / off_med * 100.0;
    let target_pct = 5.0;
    // Smoke runs are too short to separate signal from scheduler noise;
    // they exercise the path but don't enforce the target.
    let within_target = overhead_pct <= target_pct;
    println!(
        "  median: disabled {off_med:.4}s, enabled {on_med:.4}s -> overhead {overhead_pct:+.2}% \
         (target <= {target_pct}%)"
    );

    let artifact = Artifact {
        smoke,
        requests: w.requests,
        updates: w.updates,
        sync_points: syncs,
        iterations: w.iterations,
        disabled_secs_median: off_med,
        enabled_secs_median: on_med,
        overhead_pct,
        target_pct,
        within_target,
    };
    let path = "BENCH_slo_overhead.json";
    let runs = cacheportal_bench::append_history(path, &artifact).expect("write artifact");
    println!("artifact: {path} ({runs} runs in history)");
    if !smoke && !within_target {
        eprintln!("warning: SLO overhead {overhead_pct:.2}% exceeds the {target_pct}% target");
        std::process::exit(1);
    }
}

//! Regenerate **Table 3** of the paper: same grid as Table 2, but
//! Configuration II's middle-tier cache is a local DBMS whose every access
//! pays a connection cost and contends for node-local resources.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin table3
//! ```

use cacheportal_bench::tables::{format_table, run_table};
use cacheportal_bench::write_artifact;
use cacheportal_sim::{Conf2CacheAccess, SimParams};

fn main() {
    let params = SimParams::paper_baseline();
    let table = run_table("table3", Conf2CacheAccess::LocalDbms, &params);
    println!(
        "Table 3: average response times (ms) with *non-negligible* middle-tier cache\n\
         access cost in Conf. II (local DBMS as the data cache)\n"
    );
    println!("{}", format_table(&table));
    match write_artifact("table3", &table) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
    println!(
        "\nPaper reference (Table 3, Conf II exp. resp. ms): 52632 / 48845 / 48953 —\n\
         the connection cost and the race for node-local cache resources make Conf II\n\
         slower than even the raw remote database, while Conf III is unaffected."
    );
}

//! **Fig E6** (paper §5.1.1, prose): expected response vs. `cache_size`,
//! with the hit ratio *derived* from cache coverage and invalidation churn
//! rather than fixed — the functional relationships of Table 1:
//! `hit_ratio = f(cache_size)`, `inval_rate = f(cache_size, update_rate)`,
//! and over-invalidation feeding back into the hit ratio.
//!
//! Two invalidation qualities are compared: precise (CachePortal Exact,
//! `inval_per_update = 0.2` pages) and coarse (table-level,
//! `inval_per_update = 2.0` pages). Coarse invalidation needs a much larger
//! cache to reach the same response time — the paper's argument for
//! fine-granularity invalidation, quantified.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin sweep_cache_size
//! ```

use cacheportal_bench::{render_table, write_artifact};
use cacheportal_sim::{
    simulate, ConfigRow, Configuration, HitRatioModel, SimParams, UpdateRate,
};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cache_size: usize,
    inval_per_update: f64,
    effective_hit_ratio: f64,
    exp_resp_ms: Option<f64>,
}

fn main() {
    const WORKING_SET: usize = 1000;
    let mut points = Vec::new();
    for &inval_per_update in &[0.2f64, 2.0] {
        for &cache_size in &[50usize, 125, 250, 500, 750, 1000, 1500] {
            let model = HitRatioModel::Derived {
                cache_size,
                working_set: WORKING_SET,
                max_hit: 0.9,
                inval_per_update,
            };
            let params = SimParams::paper_baseline()
                .with_update_rate(UpdateRate::MEDIUM)
                .with_hit_ratio_model(model);
            let r = simulate(Configuration::WebCache, &params);
            points.push(Point {
                cache_size,
                inval_per_update,
                effective_hit_ratio: params.effective_hit_ratio(),
                exp_resp_ms: r.row.all_resp.mean_ms(),
            });
        }
    }

    let mut rows = vec![vec![
        "cache_size".to_string(),
        "inval/update".to_string(),
        "hit ratio".to_string(),
        "exp resp (ms)".to_string(),
    ]];
    for p in &points {
        rows.push(vec![
            p.cache_size.to_string(),
            format!("{:.1}", p.inval_per_update),
            format!("{:.3}", p.effective_hit_ratio),
            ConfigRow::fmt_cell(p.exp_resp_ms),
        ]);
    }
    println!(
        "Fig E6: expected response vs. cache size (working set {WORKING_SET} pages,\n\
         update load <5,5,5,5>, hit ratio derived from coverage and churn)\n"
    );
    println!("{}", render_table(&rows));
    println!(
        "Expected shape: response improves with cache size until coverage\n\
         saturates; coarse invalidation (2.0 pages/update) caps at a worse\n\
         hit ratio than precise invalidation (0.2) at every size — precision\n\
         buys the same latency with a smaller cache."
    );
    match write_artifact("sweep_cache_size", &points) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}

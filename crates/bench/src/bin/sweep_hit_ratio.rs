//! **Fig E2** (paper §5.1.1, prose): expected response time vs. cache hit
//! ratio for all three configurations. `hit_ratio` is the paper's knob that
//! links cache size and invalidation quality to end-user latency.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin sweep_hit_ratio
//! ```

use cacheportal_bench::tables::{format_sweep, sweep_hit_ratio};
use cacheportal_bench::write_artifact;
use cacheportal_sim::{SimParams, UpdateRate};

fn main() {
    let params = SimParams::paper_baseline().with_update_rate(UpdateRate::MEDIUM);
    let ratios = [0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95];
    let points = sweep_hit_ratio(&params, &ratios);
    println!(
        "Fig E2: expected response vs. hit ratio (update load <5,5,5,5>)\n\
         Conf. I ignores the ratio (it has no cache); II and III improve with it.\n"
    );
    println!("{}", format_sweep(&points, "hit_ratio"));
    match write_artifact("sweep_hit_ratio", &points) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}

//! **Fig E3**: invalidation-policy ablation on the *functional* CachePortal
//! system. Compares the invalidation quality/cost trade-off of §4.2.2:
//!
//! * `exact`        — local checks + residual polling queries
//! * `conservative` — local checks only, never polls
//! * `table-level`  — commercial middle-tier granularity
//! * `ttl-N`        — Oracle9i-style time-based refresh (no invalidator)
//!
//! Metrics: pages ejected, pure over-invalidation (ejected though content
//! was unchanged), polling load on the DBMS, achieved hit ratio, and
//! observed staleness.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin ablation_policies
//! ```

use cacheportal_bench::ablation::{run_workload, FreshnessMode, WorkloadConfig};
use cacheportal_bench::{render_table, write_artifact};

fn main() {
    let modes = [
        FreshnessMode::Exact,
        FreshnessMode::Conservative,
        FreshnessMode::TableLevel,
        FreshnessMode::Ttl { ttl_intervals: 3 },
    ];
    let mut results = Vec::new();
    for mode in modes {
        let config = WorkloadConfig {
            rounds: 40,
            requests_per_round: 40,
            updates_per_round: 12,
            mode,
            ..Default::default()
        };
        results.push(run_workload(&config));
    }

    let mut rows = vec![vec![
        "policy".to_string(),
        "hit ratio".to_string(),
        "ejected".to_string(),
        "over-inval".to_string(),
        "polls".to_string(),
        "stale rounds".to_string(),
        "staleness p95 (us)".to_string(),
    ]];
    for r in &results {
        let over = if r.pages_ejected == 0 {
            "0%".to_string()
        } else {
            format!(
                "{:.0}%",
                r.ejected_unchanged as f64 / r.pages_ejected as f64 * 100.0
            )
        };
        let staleness_p95 = r.observability["staleness"]["commit_to_eject_micros"]["p95"]
            .as_u64()
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            r.mode.clone(),
            format!("{:.2}", r.hit_ratio),
            r.pages_ejected.to_string(),
            over,
            r.polls_issued.to_string(),
            r.stale_page_rounds.to_string(),
            staleness_p95,
        ]);
    }
    println!("Fig E3: invalidation-policy ablation (functional system)\n");
    println!("{}", render_table(&rows));
    println!(
        "Expected shape: exact ejects fewest pages with near-zero over-invalidation\n\
         at the cost of polling; table-level over-invalidates heavily (lower hit\n\
         ratio); the TTL baseline never polls but serves stale pages."
    );
    match write_artifact("ablation_policies", &results) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}

//! Sync-point scaling benchmark: replays a large mixed update burst
//! (inserts + deletes across 16 tables, join query types with per-tuple
//! polling) through the invalidator at 1/2/4/8 analysis workers and
//! reports sync-point latency, throughput, and poll dedup behaviour.
//!
//! The polling RTT model (`InvalidatorConfig::poll_rtt_micros`) stands in
//! for the paper's remote DBMS: each *issued* polling query costs one
//! round trip, which is exactly what concurrent shards overlap. Every
//! worker count replays the identical workload from an identical seed
//! database; the run asserts that verdicts, ejected pages, and poll
//! statistics are identical across worker counts before reporting.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin sync_scale            # full
//! cargo run --release -p cacheportal-bench --bin sync_scale -- --smoke # CI
//! ```
//!
//! Appends one run record to the `BENCH_sync_scale.json` trajectory
//! (`{"history": [...]}`) in the working directory, so repeated runs keep
//! the perf history instead of overwriting it.

use cacheportal_db::Database;
use cacheportal_invalidator::{Invalidator, InvalidatorConfig, PolicyConfig};
use cacheportal_sniffer::QiUrlMap;
use cacheportal_web::PageKey;
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Deterministic xorshift generator so every worker count replays the
/// byte-identical update burst (no `rand` needed in a bin target).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Workload shape; the smoke profile is a scaled-down version of the
/// full one so both exercise the same code paths.
struct Workload {
    pairs: usize,
    syncs: usize,
    item_inserts: usize,
    ref_inserts: usize,
    item_deletes: usize,
    ref_deletes: usize,
    bounds: &'static [i64],
    poll_rtt_micros: u64,
    worker_counts: &'static [usize],
}

const FULL: Workload = Workload {
    pairs: 8,
    syncs: 25,
    item_inserts: 40,
    ref_inserts: 10,
    item_deletes: 5,
    ref_deletes: 2,
    bounds: &[250, 500, 750],
    poll_rtt_micros: 400,
    worker_counts: &[1, 2, 4, 8],
};

const SMOKE: Workload = Workload {
    pairs: 2,
    syncs: 4,
    item_inserts: 12,
    ref_inserts: 4,
    item_deletes: 2,
    ref_deletes: 1,
    bounds: &[250, 500],
    poll_rtt_micros: 100,
    worker_counts: &[1, 2],
};

/// Seed database: one `item_i`/`ref_i` pair per index, pre-populated so
/// polls have rows to join against from the first sync point.
fn seed_db(w: &Workload) -> Database {
    let mut db = Database::new();
    let mut rng = Rng(0x5eed_cafe);
    for i in 0..w.pairs {
        db.execute(&format!("CREATE TABLE item_{i} (id INT, k INT, v INT)"))
            .unwrap();
        db.execute(&format!("CREATE TABLE ref_{i} (k INT, w INT)"))
            .unwrap();
        for id in 0..50 {
            let (k, v) = (rng.below(40), rng.below(1000));
            db.execute(&format!("INSERT INTO item_{i} VALUES ({id}, {k}, {v})"))
                .unwrap();
        }
        for _ in 0..50 {
            let (k, wv) = (rng.below(40), rng.below(20));
            db.execute(&format!("INSERT INTO ref_{i} VALUES ({k}, {wv})"))
                .unwrap();
        }
    }
    db
}

/// Register one join query instance per (pair, bound) in the QI/URL map —
/// the invalidator's online registration picks them up at the first sync.
fn seed_map(w: &Workload) -> QiUrlMap {
    let map = QiUrlMap::new();
    for i in 0..w.pairs {
        for b in w.bounds {
            map.insert(
                format!(
                    "SELECT item_{i}.id, ref_{i}.w FROM item_{i}, ref_{i} \
                     WHERE item_{i}.k = ref_{i}.k AND item_{i}.v < {b}"
                ),
                PageKey::raw(format!("page:pair{i}:bound{b}")),
                format!("search{i}"),
            );
        }
    }
    map
}

/// One update interval: mixed inserts and deletes across every pair.
/// Returns the number of tuples written (insert rows + deleted rows).
fn apply_burst(db: &mut Database, w: &Workload, rng: &mut Rng, next_id: &mut [i64]) -> u64 {
    let mut tuples = 0u64;
    for (i, next) in next_id.iter_mut().enumerate() {
        for _ in 0..w.item_inserts {
            let id = *next;
            *next += 1;
            let (k, v) = (rng.below(40), rng.below(1000));
            db.execute(&format!("INSERT INTO item_{i} VALUES ({id}, {k}, {v})"))
                .unwrap();
            tuples += 1;
        }
        for _ in 0..w.ref_inserts {
            let (k, wv) = (rng.below(40), rng.below(20));
            db.execute(&format!("INSERT INTO ref_{i} VALUES ({k}, {wv})"))
                .unwrap();
            tuples += 1;
        }
        for _ in 0..w.item_deletes {
            let id = *next - 1 - rng.below(w.item_inserts as u64) as i64;
            let n = db
                .execute(&format!("DELETE FROM item_{i} WHERE id = {id}"))
                .unwrap()
                .affected();
            tuples += n as u64;
        }
        for _ in 0..w.ref_deletes {
            let k = rng.below(40);
            let wv = rng.below(20);
            let n = db
                .execute(&format!("DELETE FROM ref_{i} WHERE k = {k} AND w = {wv}"))
                .unwrap()
                .affected();
            tuples += n as u64;
        }
    }
    tuples
}

/// What one worker-count run produced (serialized into the artifact).
#[derive(Serialize)]
struct ConfigResult {
    workers: usize,
    total_secs: f64,
    updates_per_sec: f64,
    sync_p50_micros: u64,
    sync_p95_micros: u64,
    sync_max_micros: u64,
    polls_issued: u64,
    polls_deduped: u64,
    polls_from_index: u64,
    delete_guard_hits: u64,
    poll_lock_contended: u64,
    pages_ejected: u64,
    verdicts: u64,
    /// Digest of every verdict and ejected page across all sync points;
    /// identical across worker counts by construction.
    fingerprint: u64,
}

#[derive(Serialize)]
struct Artifact {
    smoke: bool,
    tables: usize,
    query_types: usize,
    instances: usize,
    sync_points: usize,
    updates_applied: u64,
    poll_rtt_micros: u64,
    equivalent: bool,
    speedup_vs_1w: Vec<f64>,
    configs: Vec<ConfigResult>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replay the whole workload at one worker count against a fresh seed
/// database, timing each sync point.
fn run_config(w: &Workload, workers: usize) -> (ConfigResult, u64) {
    let mut db = seed_db(w);
    let map = seed_map(w);
    let mut inv = Invalidator::new(InvalidatorConfig {
        policy: PolicyConfig {
            // Per-tuple polls: grouping would OR residuals together and
            // hide the round-trip volume the shards are overlapping.
            batch_polls: false,
            ..PolicyConfig::default()
        },
        workers,
        poll_rtt_micros: w.poll_rtt_micros,
        ..InvalidatorConfig::default()
    });
    inv.start_from(db.high_water());

    let mut rng = Rng(0xbeef_f00d);
    let mut next_id = vec![50i64; w.pairs];
    let mut sync_micros: Vec<u64> = Vec::with_capacity(w.syncs);
    let mut updates = 0u64;
    let mut hasher = DefaultHasher::new();
    let mut issued = 0u64;
    let mut deduped = 0u64;
    let mut from_index = 0u64;
    let mut guard = 0u64;
    let mut contended = 0u64;
    let mut ejected = 0u64;
    let mut verdicts = 0u64;

    let started = Instant::now();
    for _ in 0..w.syncs {
        updates += apply_burst(&mut db, w, &mut rng, &mut next_id);
        let t0 = Instant::now();
        let report = inv.run_sync_point(&db, &map).unwrap();
        sync_micros.push(t0.elapsed().as_micros() as u64);
        let consumed = inv.consumed_lsn();
        db.update_log_mut().truncate(consumed);

        // Fold this sync's outcome into the equivalence fingerprint in a
        // deterministic order (verdicts arrive in stable merge order).
        for v in &report.verdicts {
            v.type_sql.hash(&mut hasher);
            format!("{:?}", v.params).hash(&mut hasher);
            v.cause.kind.as_str().hash(&mut hasher);
            let mut pages: Vec<&str> = v.pages.iter().map(|p| p.as_str()).collect();
            pages.sort_unstable();
            pages.hash(&mut hasher);
        }
        let mut pages: Vec<&str> = report.pages.iter().map(|p| p.as_str()).collect();
        pages.sort_unstable();
        pages.hash(&mut hasher);
        report.polls.issued.hash(&mut hasher);
        report.polls.from_cache.hash(&mut hasher);
        report.polls.from_index.hash(&mut hasher);
        report.invalidated_instances.hash(&mut hasher);

        issued += report.polls.issued;
        deduped += report.polls.from_cache;
        from_index += report.polls.from_index;
        guard += report.polls.delete_guard_hits;
        contended += report.poll_lock_contended;
        ejected += report.pages.len() as u64;
        verdicts += report.verdicts.len() as u64;
    }
    let total = started.elapsed();

    sync_micros.sort_unstable();
    let result = ConfigResult {
        workers,
        total_secs: total.as_secs_f64(),
        updates_per_sec: updates as f64 / total.as_secs_f64(),
        sync_p50_micros: percentile(&sync_micros, 0.50),
        sync_p95_micros: percentile(&sync_micros, 0.95),
        sync_max_micros: *sync_micros.last().unwrap_or(&0),
        polls_issued: issued,
        polls_deduped: deduped,
        polls_from_index: from_index,
        delete_guard_hits: guard,
        poll_lock_contended: contended,
        pages_ejected: ejected,
        verdicts,
        fingerprint: hasher.finish(),
    };
    (result, updates)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let w: &Workload = if smoke { &SMOKE } else { &FULL };

    println!(
        "sync_scale{}: {} table pairs, {} sync points, bounds {:?}, poll RTT {}us",
        if smoke { " (smoke)" } else { "" },
        w.pairs,
        w.syncs,
        w.bounds,
        w.poll_rtt_micros
    );

    let mut configs: Vec<ConfigResult> = Vec::new();
    let mut updates_applied = 0u64;
    for &workers in w.worker_counts {
        let (result, updates) = run_config(w, workers);
        updates_applied = updates;
        println!(
            "  workers={:>2}: total={:7.3}s  upd/s={:>9.0}  sync p50={:>8}us p95={:>8}us  \
             polls issued={} deduped={} contended={}",
            result.workers,
            result.total_secs,
            result.updates_per_sec,
            result.sync_p50_micros,
            result.sync_p95_micros,
            result.polls_issued,
            result.polls_deduped,
            result.poll_lock_contended,
        );
        configs.push(result);
    }

    // Every worker count must produce identical invalidation outcomes.
    let equivalent = configs.windows(2).all(|p| {
        p[0].fingerprint == p[1].fingerprint
            && p[0].polls_issued == p[1].polls_issued
            && p[0].pages_ejected == p[1].pages_ejected
            && p[0].verdicts == p[1].verdicts
    });
    assert!(
        equivalent,
        "worker counts disagree on invalidation outcomes: {:?}",
        configs
            .iter()
            .map(|c| (c.workers, c.fingerprint, c.polls_issued, c.verdicts))
            .collect::<Vec<_>>()
    );
    println!(
        "  equivalence: all {} worker counts produced identical verdicts/pages/poll counts",
        configs.len()
    );

    let base = configs[0].total_secs;
    let speedup_vs_1w: Vec<f64> = configs.iter().map(|c| base / c.total_secs).collect();
    for (c, s) in configs.iter().zip(&speedup_vs_1w) {
        println!("  speedup {}w vs 1w: {s:.2}x", c.workers);
    }

    let artifact = Artifact {
        smoke,
        tables: w.pairs * 2,
        query_types: w.pairs,
        instances: w.pairs * w.bounds.len(),
        sync_points: w.syncs,
        updates_applied,
        poll_rtt_micros: w.poll_rtt_micros,
        equivalent,
        speedup_vs_1w,
        configs,
    };
    let path = "BENCH_sync_scale.json";
    let runs = cacheportal_bench::append_history(path, &artifact).expect("write artifact");
    println!("artifact: {path} ({runs} runs in history)");
}

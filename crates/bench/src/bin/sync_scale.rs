//! Sync-point scaling benchmark: replays a large mixed update burst
//! (inserts + deletes across 16 tables, join query types with per-tuple
//! polling) through the invalidator at 1/2/4/8 analysis workers and
//! reports sync-point latency, throughput, and poll dedup behaviour.
//!
//! The polling RTT model (`InvalidatorConfig::poll_rtt_micros`) stands in
//! for the paper's remote DBMS: each *issued* polling query costs one
//! round trip, which is exactly what concurrent shards overlap. Every
//! worker count replays the identical workload from an identical seed
//! database; the run asserts that verdicts, ejected pages, and poll
//! statistics are identical across worker counts before reporting.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin sync_scale            # full
//! cargo run --release -p cacheportal-bench --bin sync_scale -- --smoke # CI
//! ```
//!
//! Appends one run record to the `BENCH_sync_scale.json` trajectory
//! (`{"history": [...]}`) in the working directory, so repeated runs keep
//! the perf history instead of overwriting it.

use cacheportal_db::Database;
use cacheportal_invalidator::{Invalidator, InvalidatorConfig, PolicyConfig};
use cacheportal_sniffer::QiUrlMap;
use cacheportal_web::PageKey;
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Deterministic xorshift generator so every worker count replays the
/// byte-identical update burst (no `rand` needed in a bin target).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Workload shape; the smoke profile is a scaled-down version of the
/// full one so both exercise the same code paths.
struct Workload {
    pairs: usize,
    syncs: usize,
    item_inserts: usize,
    ref_inserts: usize,
    item_deletes: usize,
    ref_deletes: usize,
    bounds: &'static [i64],
    poll_rtt_micros: u64,
    worker_counts: &'static [usize],
}

const FULL: Workload = Workload {
    pairs: 8,
    syncs: 25,
    item_inserts: 40,
    ref_inserts: 10,
    item_deletes: 5,
    ref_deletes: 2,
    bounds: &[250, 500, 750],
    poll_rtt_micros: 400,
    worker_counts: &[1, 2, 4, 8],
};

const SMOKE: Workload = Workload {
    pairs: 2,
    syncs: 4,
    item_inserts: 12,
    ref_inserts: 4,
    item_deletes: 2,
    ref_deletes: 1,
    bounds: &[250, 500],
    poll_rtt_micros: 100,
    worker_counts: &[1, 2],
};

/// Seed database: one `item_i`/`ref_i` pair per index, pre-populated so
/// polls have rows to join against from the first sync point.
fn seed_db(w: &Workload) -> Database {
    let mut db = Database::new();
    let mut rng = Rng(0x5eed_cafe);
    for i in 0..w.pairs {
        db.execute(&format!("CREATE TABLE item_{i} (id INT, k INT, v INT)"))
            .unwrap();
        db.execute(&format!("CREATE TABLE ref_{i} (k INT, w INT)"))
            .unwrap();
        for id in 0..50 {
            let (k, v) = (rng.below(40), rng.below(1000));
            db.execute(&format!("INSERT INTO item_{i} VALUES ({id}, {k}, {v})"))
                .unwrap();
        }
        for _ in 0..50 {
            let (k, wv) = (rng.below(40), rng.below(20));
            db.execute(&format!("INSERT INTO ref_{i} VALUES ({k}, {wv})"))
                .unwrap();
        }
    }
    db
}

/// Register one join query instance per (pair, bound) in the QI/URL map —
/// the invalidator's online registration picks them up at the first sync.
fn seed_map(w: &Workload) -> QiUrlMap {
    let map = QiUrlMap::new();
    for i in 0..w.pairs {
        for b in w.bounds {
            map.insert(
                format!(
                    "SELECT item_{i}.id, ref_{i}.w FROM item_{i}, ref_{i} \
                     WHERE item_{i}.k = ref_{i}.k AND item_{i}.v < {b}"
                ),
                PageKey::raw(format!("page:pair{i}:bound{b}")),
                format!("search{i}"),
            );
        }
    }
    map
}

/// One update interval: mixed inserts and deletes across every pair.
/// Returns the number of tuples written (insert rows + deleted rows).
fn apply_burst(db: &mut Database, w: &Workload, rng: &mut Rng, next_id: &mut [i64]) -> u64 {
    let mut tuples = 0u64;
    for (i, next) in next_id.iter_mut().enumerate() {
        for _ in 0..w.item_inserts {
            let id = *next;
            *next += 1;
            let (k, v) = (rng.below(40), rng.below(1000));
            db.execute(&format!("INSERT INTO item_{i} VALUES ({id}, {k}, {v})"))
                .unwrap();
            tuples += 1;
        }
        for _ in 0..w.ref_inserts {
            let (k, wv) = (rng.below(40), rng.below(20));
            db.execute(&format!("INSERT INTO ref_{i} VALUES ({k}, {wv})"))
                .unwrap();
            tuples += 1;
        }
        for _ in 0..w.item_deletes {
            let id = *next - 1 - rng.below(w.item_inserts as u64) as i64;
            let n = db
                .execute(&format!("DELETE FROM item_{i} WHERE id = {id}"))
                .unwrap()
                .affected();
            tuples += n as u64;
        }
        for _ in 0..w.ref_deletes {
            let k = rng.below(40);
            let wv = rng.below(20);
            let n = db
                .execute(&format!("DELETE FROM ref_{i} WHERE k = {k} AND w = {wv}"))
                .unwrap()
                .affected();
            tuples += n as u64;
        }
    }
    tuples
}

/// What one worker-count run produced (serialized into the artifact).
#[derive(Serialize)]
struct ConfigResult {
    workers: usize,
    total_secs: f64,
    updates_per_sec: f64,
    sync_p50_micros: u64,
    sync_p95_micros: u64,
    sync_max_micros: u64,
    polls_issued: u64,
    polls_deduped: u64,
    polls_from_index: u64,
    delete_guard_hits: u64,
    poll_lock_contended: u64,
    pages_ejected: u64,
    verdicts: u64,
    /// Digest of every verdict and ejected page across all sync points;
    /// identical across worker counts by construction.
    fingerprint: u64,
}

#[derive(Serialize)]
struct Artifact {
    mode: &'static str,
    smoke: bool,
    tables: usize,
    query_types: usize,
    instances: usize,
    sync_points: usize,
    updates_applied: u64,
    poll_rtt_micros: u64,
    equivalent: bool,
    speedup_vs_1w: Vec<f64>,
    configs: Vec<ConfigResult>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replay the whole workload at one worker count against a fresh seed
/// database, timing each sync point.
fn run_config(w: &Workload, workers: usize) -> (ConfigResult, u64) {
    let mut db = seed_db(w);
    let map = seed_map(w);
    let mut inv = Invalidator::new(InvalidatorConfig {
        policy: PolicyConfig {
            // Per-tuple polls: grouping would OR residuals together and
            // hide the round-trip volume the shards are overlapping.
            batch_polls: false,
            ..PolicyConfig::default()
        },
        workers,
        poll_rtt_micros: w.poll_rtt_micros,
        ..InvalidatorConfig::default()
    });
    inv.start_from(db.high_water());

    // Maintained join-attribute indexes (paper section 4.3): residual
    // polls of the form `ref_i.k = <literal>` are answered from the
    // invalidator-local index instead of a DBMS round trip. Without
    // this, every benchmark record reported `polls_from_index: 0` and
    // the counter was effectively dead. Index state is driven by the
    // same delta stream as analysis, so answers — and the from_index
    // counter — stay identical across worker counts.
    for i in 0..w.pairs {
        inv.maintain_index(&db, &format!("ref_{i}"), "k")
            .expect("ref table exists at index registration");
    }

    let mut rng = Rng(0xbeef_f00d);
    let mut next_id = vec![50i64; w.pairs];
    let mut sync_micros: Vec<u64> = Vec::with_capacity(w.syncs);
    let mut updates = 0u64;
    let mut hasher = DefaultHasher::new();
    let mut issued = 0u64;
    let mut deduped = 0u64;
    let mut from_index = 0u64;
    let mut guard = 0u64;
    let mut contended = 0u64;
    let mut ejected = 0u64;
    let mut verdicts = 0u64;

    let started = Instant::now();
    for _ in 0..w.syncs {
        updates += apply_burst(&mut db, w, &mut rng, &mut next_id);
        let t0 = Instant::now();
        let report = inv.run_sync_point(&db, &map).unwrap();
        sync_micros.push(t0.elapsed().as_micros() as u64);
        let consumed = inv.consumed_lsn();
        db.update_log_mut().truncate(consumed);

        // Fold this sync's outcome into the equivalence fingerprint in a
        // deterministic order (verdicts arrive in stable merge order).
        for v in &report.verdicts {
            v.type_sql.hash(&mut hasher);
            format!("{:?}", v.params).hash(&mut hasher);
            v.cause.kind.as_str().hash(&mut hasher);
            let mut pages: Vec<&str> = v.pages.iter().map(|p| p.as_str()).collect();
            pages.sort_unstable();
            pages.hash(&mut hasher);
        }
        let mut pages: Vec<&str> = report.pages.iter().map(|p| p.as_str()).collect();
        pages.sort_unstable();
        pages.hash(&mut hasher);
        report.polls.issued.hash(&mut hasher);
        report.polls.from_cache.hash(&mut hasher);
        report.polls.from_index.hash(&mut hasher);
        report.invalidated_instances.hash(&mut hasher);

        issued += report.polls.issued;
        deduped += report.polls.from_cache;
        from_index += report.polls.from_index;
        guard += report.polls.delete_guard_hits;
        contended += report.poll_lock_contended;
        ejected += report.pages.len() as u64;
        verdicts += report.verdicts.len() as u64;
    }
    let total = started.elapsed();

    sync_micros.sort_unstable();
    let result = ConfigResult {
        workers,
        total_secs: total.as_secs_f64(),
        updates_per_sec: updates as f64 / total.as_secs_f64(),
        sync_p50_micros: percentile(&sync_micros, 0.50),
        sync_p95_micros: percentile(&sync_micros, 0.95),
        sync_max_micros: *sync_micros.last().unwrap_or(&0),
        polls_issued: issued,
        polls_deduped: deduped,
        polls_from_index: from_index,
        delete_guard_hits: guard,
        poll_lock_contended: contended,
        pages_ejected: ejected,
        verdicts,
        fingerprint: hasher.finish(),
    };
    (result, updates)
}

// ---------------------------------------------------------------------------
// Registered-QI sweep (`--qi-sweep`)
// ---------------------------------------------------------------------------
//
// The worker-count benchmark above holds the instance population small and
// scales the update burst. The sweep inverts that: the burst stays fixed
// while the number of *registered query instances* grows to one million,
// measuring whether per-sync latency tracks the number of instances the
// deltas can actually touch (predicate index) or the total registered
// population (linear scan). Each tier runs both arms — index on and
// `predicate_index: false` — over the byte-identical workload and asserts
// that their verdict/page fingerprints are equal: the index may only skip
// work, never change outcomes.

/// Shape of one `--qi-sweep` run.
struct SweepShape {
    tiers: &'static [usize],
    seed_rows: usize,
    syncs: usize,
    burst_rows: usize,
}

const SWEEP_FULL: SweepShape = SweepShape {
    tiers: &[10_000, 100_000, 1_000_000],
    seed_rows: 1_000,
    syncs: 6,
    burst_rows: 200,
};

const SWEEP_SMOKE: SweepShape = SweepShape {
    tiers: &[100, 1_000],
    seed_rows: 200,
    syncs: 3,
    burst_rows: 40,
};

/// Range/residual side-car query instances registered at every tier; they
/// keep every probe tier (equality, range, residual) exercised without
/// growing with `n`.
const SWEEP_RANGE_QIS: usize = 32;
const SWEEP_RESIDUAL_QIS: usize = 32;

/// Distinct `k` values the update burst draws from. Equality instances are
/// registered with params `0..n`, so at most this many can be candidates
/// per sync regardless of the tier — exactly the sublinearity the index is
/// supposed to deliver.
const SWEEP_KEYSPACE: u64 = 64;

/// What one (tier, arm) run produced.
#[derive(Debug, Serialize)]
struct SweepArm {
    index_enabled: bool,
    /// First sync point: consumes the whole QI/URL map (unmeasured in the
    /// latency columns; both arms pay the identical cost).
    registration_secs: f64,
    sync_p50_micros: u64,
    sync_p95_micros: u64,
    sync_max_micros: u64,
    /// Instances that went through the full per-instance decision.
    checked_instances: u64,
    index_candidates: u64,
    index_skipped: u64,
    index_residual_scanned: u64,
    index_size: u64,
    /// Digest of every verdict and ejected page across measured syncs;
    /// must match the other arm at the same tier.
    fingerprint: u64,
}

#[derive(Debug, Serialize)]
struct SweepTier {
    instances: usize,
    index: SweepArm,
    scan: SweepArm,
    fingerprints_match: bool,
    /// Scan-arm p95 divided by index-arm p95 at this tier.
    p95_speedup: f64,
}

#[derive(Serialize)]
struct SweepArtifact {
    mode: &'static str,
    smoke: bool,
    sync_points: usize,
    burst_rows: usize,
    tiers: Vec<SweepTier>,
}

/// Single wide table; every sweep query type reads it, so every sync's
/// delta batch makes all three types candidates.
fn sweep_db(shape: &SweepShape) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE sweep_item (id INT, k INT, v INT)")
        .unwrap();
    let mut rng = Rng(0x5eed_cafe);
    for id in 0..shape.seed_rows {
        let (k, v) = (rng.below(SWEEP_KEYSPACE), rng.below(1000));
        db.execute(&format!("INSERT INTO sweep_item VALUES ({id}, {k}, {v})"))
            .unwrap();
    }
    db
}

/// `n` equality instances (one type, `n` params), plus fixed-size range and
/// fully-residual populations. The residual type's `k + 0 = j` conjunct
/// parameterizes to `k + $1 = $2` — an arithmetic left-hand side the index
/// cannot classify — so it exercises the scan fallback on every sync.
fn sweep_map(n: usize) -> QiUrlMap {
    let map = QiUrlMap::new();
    for j in 0..n {
        map.insert(
            format!("SELECT v FROM sweep_item WHERE sweep_item.k = {j}"),
            PageKey::raw(format!("page:eq{j}")),
            "sweepEq".to_string(),
        );
    }
    for b in 0..SWEEP_RANGE_QIS {
        map.insert(
            format!(
                "SELECT id FROM sweep_item WHERE sweep_item.v < {}",
                b * 31 + 7
            ),
            PageKey::raw(format!("page:lt{b}")),
            "sweepRange".to_string(),
        );
    }
    for j in 0..SWEEP_RESIDUAL_QIS {
        map.insert(
            format!("SELECT v FROM sweep_item WHERE sweep_item.k + 0 = {j}"),
            PageKey::raw(format!("page:res{j}")),
            "sweepResidual".to_string(),
        );
    }
    map
}

/// Replay the sweep workload once at one tier with the index on or off.
/// All decisions are local (single-table conjuncts bind fully after tuple
/// substitution), so the numbers measure analysis cost, not polling RTT.
fn run_sweep_arm(shape: &SweepShape, n: usize, use_index: bool) -> SweepArm {
    let mut db = sweep_db(shape);
    let map = sweep_map(n);
    let mut inv = Invalidator::new(InvalidatorConfig {
        predicate_index: use_index,
        ..InvalidatorConfig::default()
    });
    inv.start_from(db.high_water());

    // Registration sync: no log records yet, so this consumes the map and
    // returns before analysis. Subsequent syncs see an empty cursor.
    let reg_started = Instant::now();
    inv.run_sync_point(&db, &map).unwrap();
    let registration_secs = reg_started.elapsed().as_secs_f64();

    let mut rng = Rng(0xbeef_f00d);
    let mut next_id = shape.seed_rows as i64;
    let mut sync_micros: Vec<u64> = Vec::with_capacity(shape.syncs);
    let mut hasher = DefaultHasher::new();
    let mut checked = 0u64;
    let mut candidates = 0u64;
    let mut skipped = 0u64;
    let mut residual = 0u64;
    let mut index_size = 0u64;

    // One warmup burst+sync (unmeasured) so allocator/cache effects do not
    // land on the first measured point, then `shape.syncs` measured syncs.
    for measured in 0..=shape.syncs {
        for _ in 0..shape.burst_rows {
            let (k, v) = (rng.below(SWEEP_KEYSPACE), rng.below(1000));
            db.execute(&format!("INSERT INTO sweep_item VALUES ({next_id}, {k}, {v})"))
                .unwrap();
            next_id += 1;
        }
        let t0 = Instant::now();
        let report = inv.run_sync_point(&db, &map).unwrap();
        let micros = t0.elapsed().as_micros() as u64;
        db.update_log_mut().truncate(inv.consumed_lsn());
        if measured == 0 {
            continue;
        }
        sync_micros.push(micros);
        for v in &report.verdicts {
            v.type_sql.hash(&mut hasher);
            format!("{:?}", v.params).hash(&mut hasher);
            v.cause.kind.as_str().hash(&mut hasher);
            let mut pages: Vec<&str> = v.pages.iter().map(|p| p.as_str()).collect();
            pages.sort_unstable();
            pages.hash(&mut hasher);
        }
        let mut pages: Vec<&str> = report.pages.iter().map(|p| p.as_str()).collect();
        pages.sort_unstable();
        pages.hash(&mut hasher);
        checked += report.checked_instances;
        candidates += report.index_candidates;
        skipped += report.index_skipped;
        residual += report.index_residual_scanned;
        index_size = report.index_size;
    }

    sync_micros.sort_unstable();
    SweepArm {
        index_enabled: use_index,
        registration_secs,
        sync_p50_micros: percentile(&sync_micros, 0.50),
        sync_p95_micros: percentile(&sync_micros, 0.95),
        sync_max_micros: *sync_micros.last().unwrap_or(&0),
        checked_instances: checked,
        index_candidates: candidates,
        index_skipped: skipped,
        index_residual_scanned: residual,
        index_size,
        fingerprint: hasher.finish(),
    }
}

/// Run both arms at one tier and check the soundness contract: identical
/// verdict/page fingerprints with and without the index.
fn run_sweep_tier(shape: &SweepShape, n: usize) -> SweepTier {
    let index = run_sweep_arm(shape, n, true);
    let scan = run_sweep_arm(shape, n, false);
    let fingerprints_match = index.fingerprint == scan.fingerprint;
    let p95_speedup = scan.sync_p95_micros as f64 / index.sync_p95_micros.max(1) as f64;
    SweepTier {
        instances: n + SWEEP_RANGE_QIS + SWEEP_RESIDUAL_QIS,
        index,
        scan,
        fingerprints_match,
        p95_speedup,
    }
}

fn run_qi_sweep(smoke: bool) {
    let shape: &SweepShape = if smoke { &SWEEP_SMOKE } else { &SWEEP_FULL };
    println!(
        "sync_scale qi-sweep{}: tiers {:?}, {} measured syncs, burst {} rows",
        if smoke { " (smoke)" } else { "" },
        shape.tiers,
        shape.syncs,
        shape.burst_rows
    );

    let mut tiers: Vec<SweepTier> = Vec::new();
    for &n in shape.tiers {
        let tier = run_sweep_tier(shape, n);
        println!(
            "  qi={:>9}: index p95={:>8}us (checked {} skipped {})  scan p95={:>8}us (checked {})  \
             speedup {:.1}x  fingerprints {}",
            tier.instances,
            tier.index.sync_p95_micros,
            tier.index.checked_instances,
            tier.index.index_skipped,
            tier.scan.sync_p95_micros,
            tier.scan.checked_instances,
            tier.p95_speedup,
            if tier.fingerprints_match { "match" } else { "DIVERGE" },
        );
        assert!(
            tier.fingerprints_match,
            "index and scan arms disagree at {} instances: {tier:?}",
            tier.instances
        );
        tiers.push(tier);
    }

    // Acceptance gate (full run only; smoke tiers are too small for stable
    // percentiles): with the index on, p95 at the largest tier must stay
    // within 2x of the smallest tier — i.e. per-sync cost tracks the
    // touched set, not the registered population.
    if !smoke {
        let first = tiers.first().unwrap().index.sync_p95_micros;
        let last = tiers.last().unwrap().index.sync_p95_micros;
        assert!(
            last <= first.saturating_mul(2),
            "indexed p95 grew with population: {last}us at largest tier vs {first}us at smallest"
        );
        println!("  flatness: indexed p95 {last}us at 1M vs {first}us at 10k (<= 2x)");
    }

    let artifact = SweepArtifact {
        mode: "qi_sweep",
        smoke,
        sync_points: shape.syncs,
        burst_rows: shape.burst_rows,
        tiers,
    };
    let path = "BENCH_sync_scale.json";
    let runs = cacheportal_bench::append_history(path, &artifact).expect("write artifact");
    println!("artifact: {path} ({runs} runs in history)");
}

// ---------------------------------------------------------------------------
// Shape-mix precision benchmark (`--shape-mix`)
// ---------------------------------------------------------------------------
//
// Measures what the shape-aware decision rules buy: the same deterministic
// workload — below-boundary inserts, value-preserving touches, and the
// occasional genuinely-invalidating high insert — replayed through two
// invalidators, shape rules on and off. Per shape (conjunctive / top-k /
// aggregate / LIKE / IN) the run records how many page ejects each arm
// produced and asserts the precision contract: the on-arm ejects a strict
// subset overall, with a strict reduction on top-k and aggregate pages and
// byte-identical ejects on conjunctive/LIKE/IN pages (index tiers may only
// skip work, never change verdicts).

/// Shape of one `--shape-mix` run.
struct MixShape {
    /// Groups `0..groups`; the lower half takes inserts, the upper half
    /// takes touches only, so upper-group aggregate pages are provably
    /// value-preserved every sync.
    groups: i64,
    syncs: usize,
    /// Below-boundary inserts per lower group per sync (`v < 100`, far
    /// under the seeded top-3 boundary of 900+).
    low_inserts: usize,
    /// Delete-then-reinsert of an existing low-value upper-group row per
    /// sync: net-zero for every aggregate, outside every top-k.
    touches: usize,
}

const MIX_FULL: MixShape = MixShape {
    groups: 8,
    syncs: 12,
    low_inserts: 6,
    touches: 10,
};

const MIX_SMOKE: MixShape = MixShape {
    groups: 4,
    syncs: 3,
    low_inserts: 2,
    touches: 3,
};

/// Per-group seed: three high rows (v in 900..1000) to pin the top-3
/// boundary plus low filler rows the touches can pick from.
const MIX_HIGH_SEED: usize = 3;
const MIX_LOW_SEED: usize = 6;

/// Eject counts bucketed by query shape (via page-key prefix).
#[derive(Debug, Default, Serialize, PartialEq, Eq)]
struct ShapeEjects {
    conjunctive: u64,
    topk: u64,
    aggregate: u64,
    like: u64,
    inlist: u64,
}

impl ShapeEjects {
    fn count(&mut self, page: &str) {
        match page.split(':').next().unwrap_or("") {
            "conj" => self.conjunctive += 1,
            "topk" => self.topk += 1,
            "agg" => self.aggregate += 1,
            "like" => self.like += 1,
            "in" => self.inlist += 1,
            _ => {}
        }
    }
}

/// What one (shape-rules on/off) arm produced.
#[derive(Debug, Serialize)]
struct MixArm {
    shape_rules: bool,
    sync_p50_micros: u64,
    sync_p95_micros: u64,
    pages_ejected: u64,
    ejects: ShapeEjects,
    shape_topk_skipped: u64,
    shape_agg_skipped: u64,
    shape_boundary_polls: u64,
}

/// Per-shape precision comparison row.
#[derive(Serialize)]
struct ShapeRecord {
    shape: &'static str,
    ejects_on: u64,
    ejects_off: u64,
    /// 1 - on/off: the fraction of conservative ejects the shape rules
    /// proved unnecessary (0 for shapes without a decision rule).
    over_invalidation_reduction: f64,
}

#[derive(Serialize)]
struct MixArtifact {
    mode: &'static str,
    smoke: bool,
    sync_points: usize,
    groups: i64,
    on: MixArm,
    off: MixArm,
    shapes: Vec<ShapeRecord>,
}

fn mix_db(shape: &MixShape, rows: &mut Vec<(i64, i64, i64)>) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE mix_item (id INT, g INT, v INT, s TEXT, INDEX(g))")
        .unwrap();
    let mut rng = Rng(0x5eed_cafe);
    let mut id = 0i64;
    for g in 0..shape.groups {
        for i in 0..(MIX_HIGH_SEED + MIX_LOW_SEED) {
            let v = if i < MIX_HIGH_SEED {
                900 + rng.below(100) as i64
            } else {
                rng.below(300) as i64
            };
            db.execute(&format!("INSERT INTO mix_item VALUES ({id}, {g}, {v}, 's{v}')"))
                .unwrap();
            rows.push((id, g, v));
            id += 1;
        }
    }
    db
}

/// One registered instance per shape per group (plus one LIKE instance per
/// leading digit). Page keys are prefixed with the shape so ejects can be
/// bucketed.
fn mix_map(shape: &MixShape) -> QiUrlMap {
    let map = QiUrlMap::new();
    for g in 0..shape.groups {
        map.insert(
            format!("SELECT v FROM mix_item WHERE mix_item.g = {g}"),
            PageKey::raw(format!("conj:{g}")),
            "mixConj".to_string(),
        );
        map.insert(
            format!("SELECT id, v FROM mix_item WHERE g = {g} ORDER BY v DESC LIMIT 3"),
            PageKey::raw(format!("topk:{g}")),
            "mixTopK".to_string(),
        );
        map.insert(
            format!("SELECT COUNT(*), SUM(v) FROM mix_item WHERE g = {g}"),
            PageKey::raw(format!("agg:{g}")),
            "mixAgg".to_string(),
        );
        map.insert(
            format!(
                "SELECT id FROM mix_item WHERE g IN ({g}, {}, 99) ORDER BY id",
                (g + 1) % shape.groups
            ),
            PageKey::raw(format!("in:{g}")),
            "mixIn".to_string(),
        );
    }
    for d in 0..10 {
        map.insert(
            format!("SELECT id FROM mix_item WHERE s LIKE 's{d}%' ORDER BY id"),
            PageKey::raw(format!("like:{d}")),
            "mixLike".to_string(),
        );
    }
    map
}

/// Replay the mix workload once with shape rules on or off. Returns the
/// arm summary plus the sorted ejected-page list of every sync, so the
/// caller can check on ⊆ off sync-by-sync.
fn run_shape_mix_arm(shape: &MixShape, shape_rules: bool) -> (MixArm, Vec<Vec<String>>) {
    let mut rows: Vec<(i64, i64, i64)> = Vec::new();
    let mut db = mix_db(shape, &mut rows);
    let map = mix_map(shape);
    let mut inv = Invalidator::new(InvalidatorConfig {
        shape_rules,
        ..InvalidatorConfig::default()
    });
    inv.start_from(db.high_water());
    inv.run_sync_point(&db, &map).unwrap();

    let mut rng = Rng(0xbeef_f00d);
    let mut next_id = rows.len() as i64;
    let half = shape.groups / 2;
    let mut sync_micros: Vec<u64> = Vec::with_capacity(shape.syncs);
    let mut arm = MixArm {
        shape_rules,
        sync_p50_micros: 0,
        sync_p95_micros: 0,
        pages_ejected: 0,
        ejects: ShapeEjects::default(),
        shape_topk_skipped: 0,
        shape_agg_skipped: 0,
        shape_boundary_polls: 0,
    };
    let mut per_sync: Vec<Vec<String>> = Vec::with_capacity(shape.syncs);

    for sync in 0..shape.syncs {
        // Below-boundary inserts into the lower groups.
        for g in 0..half {
            for _ in 0..shape.low_inserts {
                let v = rng.below(100) as i64;
                db.execute(&format!(
                    "INSERT INTO mix_item VALUES ({next_id}, {g}, {v}, 's{v}')"
                ))
                .unwrap();
                rows.push((next_id, g, v));
                next_id += 1;
            }
        }
        // Value-preserving touches of low upper-group rows.
        let candidates: Vec<(i64, i64, i64)> = rows
            .iter()
            .filter(|(_, g, v)| *g >= half && *v < 300)
            .cloned()
            .collect();
        for _ in 0..shape.touches {
            let (id, g, v) = candidates[rng.below(candidates.len() as u64) as usize];
            db.execute(&format!("DELETE FROM mix_item WHERE id = {id}"))
                .unwrap();
            db.execute(&format!("INSERT INTO mix_item VALUES ({id}, {g}, {v}, 's{v}')"))
                .unwrap();
        }
        // One genuinely-invalidating high insert, rotating over the lower
        // groups: enters the top-3 and moves the aggregates, so both arms
        // must eject — keeps the safety side of the comparison honest.
        let g = (sync as i64) % half.max(1);
        let v = 1500 + rng.below(100) as i64;
        db.execute(&format!(
            "INSERT INTO mix_item VALUES ({next_id}, {g}, {v}, 's{v}')"
        ))
        .unwrap();
        rows.push((next_id, g, v));
        next_id += 1;

        let t0 = Instant::now();
        let report = inv.run_sync_point(&db, &map).unwrap();
        sync_micros.push(t0.elapsed().as_micros() as u64);
        db.update_log_mut().truncate(inv.consumed_lsn());

        let mut pages: Vec<String> = report.pages.iter().map(|p| p.as_str().to_string()).collect();
        pages.sort_unstable();
        for p in &pages {
            arm.ejects.count(p);
        }
        arm.pages_ejected += pages.len() as u64;
        per_sync.push(pages);
        arm.shape_topk_skipped += report.shape_topk_skipped;
        arm.shape_agg_skipped += report.shape_agg_skipped;
        arm.shape_boundary_polls += report.shape_boundary_polls;
    }

    sync_micros.sort_unstable();
    arm.sync_p50_micros = percentile(&sync_micros, 0.50);
    arm.sync_p95_micros = percentile(&sync_micros, 0.95);
    (arm, per_sync)
}

fn reduction(on: u64, off: u64) -> f64 {
    if off == 0 {
        0.0
    } else {
        1.0 - on as f64 / off as f64
    }
}

/// Run both arms, enforce the precision contract, and append the per-shape
/// comparison to the artifact history.
fn run_shape_mix_arms(shape: &MixShape, smoke: bool) -> MixArtifact {
    let (on, on_pages) = run_shape_mix_arm(shape, true);
    let (off, off_pages) = run_shape_mix_arm(shape, false);

    // on ⊆ off at every sync point: shape rules may only keep pages cached.
    for (i, (a, b)) in on_pages.iter().zip(&off_pages).enumerate() {
        for p in a {
            assert!(
                b.contains(p),
                "precision violated at sync {i}: shape-on ejected {p} but shape-off kept it"
            );
        }
    }
    // Strict improvement on the shapes with decision rules...
    assert!(
        on.ejects.topk < off.ejects.topk,
        "no top-k precision win: on {} vs off {}",
        on.ejects.topk,
        off.ejects.topk
    );
    assert!(
        on.ejects.aggregate < off.ejects.aggregate,
        "no aggregate precision win: on {} vs off {}",
        on.ejects.aggregate,
        off.ejects.aggregate
    );
    // ...and byte-identical verdicts everywhere else: LIKE/IN are index
    // tiers (skip work, never change outcomes), conjunctive is untouched.
    assert_eq!(
        (on.ejects.conjunctive, on.ejects.like, on.ejects.inlist),
        (off.ejects.conjunctive, off.ejects.like, off.ejects.inlist),
        "shapes without decision rules must eject identically"
    );
    assert!(on.shape_topk_skipped > 0 && on.shape_agg_skipped > 0);
    assert_eq!(off.shape_topk_skipped + off.shape_agg_skipped, 0);

    let shapes = vec![
        ShapeRecord {
            shape: "conjunctive",
            ejects_on: on.ejects.conjunctive,
            ejects_off: off.ejects.conjunctive,
            over_invalidation_reduction: reduction(on.ejects.conjunctive, off.ejects.conjunctive),
        },
        ShapeRecord {
            shape: "topk",
            ejects_on: on.ejects.topk,
            ejects_off: off.ejects.topk,
            over_invalidation_reduction: reduction(on.ejects.topk, off.ejects.topk),
        },
        ShapeRecord {
            shape: "aggregate",
            ejects_on: on.ejects.aggregate,
            ejects_off: off.ejects.aggregate,
            over_invalidation_reduction: reduction(on.ejects.aggregate, off.ejects.aggregate),
        },
        ShapeRecord {
            shape: "like",
            ejects_on: on.ejects.like,
            ejects_off: off.ejects.like,
            over_invalidation_reduction: reduction(on.ejects.like, off.ejects.like),
        },
        ShapeRecord {
            shape: "inlist",
            ejects_on: on.ejects.inlist,
            ejects_off: off.ejects.inlist,
            over_invalidation_reduction: reduction(on.ejects.inlist, off.ejects.inlist),
        },
    ];
    MixArtifact {
        mode: "shape_mix",
        smoke,
        sync_points: shape.syncs,
        groups: shape.groups,
        on,
        off,
        shapes,
    }
}

fn run_shape_mix(smoke: bool) {
    let shape: &MixShape = if smoke { &MIX_SMOKE } else { &MIX_FULL };
    println!(
        "sync_scale shape-mix{}: {} groups, {} sync points",
        if smoke { " (smoke)" } else { "" },
        shape.groups,
        shape.syncs
    );
    let artifact = run_shape_mix_arms(shape, smoke);
    for r in &artifact.shapes {
        println!(
            "  {:>11}: on={:>4} off={:>4}  over-invalidation cut {:>5.1}%",
            r.shape,
            r.ejects_on,
            r.ejects_off,
            r.over_invalidation_reduction * 100.0
        );
    }
    println!(
        "  shape-on skips: topk={} agg={} (boundary polls {})",
        artifact.on.shape_topk_skipped,
        artifact.on.shape_agg_skipped,
        artifact.on.shape_boundary_polls
    );
    let path = "BENCH_sync_scale.json";
    let runs = cacheportal_bench::append_history(path, &artifact).expect("write artifact");
    println!("artifact: {path} ({runs} runs in history)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--qi-sweep") {
        run_qi_sweep(smoke);
        return;
    }
    if args.iter().any(|a| a == "--shape-mix") {
        run_shape_mix(smoke);
        return;
    }
    let w: &Workload = if smoke { &SMOKE } else { &FULL };

    println!(
        "sync_scale{}: {} table pairs, {} sync points, bounds {:?}, poll RTT {}us",
        if smoke { " (smoke)" } else { "" },
        w.pairs,
        w.syncs,
        w.bounds,
        w.poll_rtt_micros
    );

    let mut configs: Vec<ConfigResult> = Vec::new();
    let mut updates_applied = 0u64;
    for &workers in w.worker_counts {
        let (result, updates) = run_config(w, workers);
        updates_applied = updates;
        println!(
            "  workers={:>2}: total={:7.3}s  upd/s={:>9.0}  sync p50={:>8}us p95={:>8}us  \
             polls issued={} deduped={} contended={}",
            result.workers,
            result.total_secs,
            result.updates_per_sec,
            result.sync_p50_micros,
            result.sync_p95_micros,
            result.polls_issued,
            result.polls_deduped,
            result.poll_lock_contended,
        );
        configs.push(result);
    }

    // Every worker count must produce identical invalidation outcomes.
    let equivalent = configs.windows(2).all(|p| {
        p[0].fingerprint == p[1].fingerprint
            && p[0].polls_issued == p[1].polls_issued
            && p[0].pages_ejected == p[1].pages_ejected
            && p[0].verdicts == p[1].verdicts
    });
    assert!(
        equivalent,
        "worker counts disagree on invalidation outcomes: {:?}",
        configs
            .iter()
            .map(|c| (c.workers, c.fingerprint, c.polls_issued, c.verdicts))
            .collect::<Vec<_>>()
    );
    println!(
        "  equivalence: all {} worker counts produced identical verdicts/pages/poll counts",
        configs.len()
    );

    let base = configs[0].total_secs;
    let speedup_vs_1w: Vec<f64> = configs.iter().map(|c| base / c.total_secs).collect();
    for (c, s) in configs.iter().zip(&speedup_vs_1w) {
        println!("  speedup {}w vs 1w: {s:.2}x", c.workers);
    }

    let artifact = Artifact {
        mode: "workers",
        smoke,
        tables: w.pairs * 2,
        query_types: w.pairs,
        instances: w.pairs * w.bounds.len(),
        sync_points: w.syncs,
        updates_applied,
        poll_rtt_micros: w.poll_rtt_micros,
        equivalent,
        speedup_vs_1w,
        configs,
    };
    let path = "BENCH_sync_scale.json";
    let runs = cacheportal_bench::append_history(path, &artifact).expect("write artifact");
    println!("artifact: {path} ({runs} runs in history)");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the dead `polls_from_index` counter: every benchmark
    /// record reported 0 because `run_config` never called
    /// `maintain_index`. With the `ref_i.k` indexes maintained, the
    /// per-tuple residual polls `ref_i.k = <literal>` must be answered
    /// locally at least once per run.
    #[test]
    fn smoke_workload_exercises_maintained_index_poll_path() {
        let (result, _) = run_config(&SMOKE, 1);
        assert!(
            result.polls_from_index > 0,
            "maintained index answered no polls: issued={} from_index={}",
            result.polls_issued,
            result.polls_from_index
        );
    }

    /// The smoke shape-mix run must uphold the full precision contract:
    /// on ⊆ off per sync, strict wins on top-k and aggregate, identical
    /// ejects elsewhere (all asserted inside `run_shape_mix_arms`).
    #[test]
    fn shape_mix_smoke_shows_strict_precision_win() {
        let artifact = run_shape_mix_arms(&MIX_SMOKE, true);
        assert!(artifact.on.pages_ejected < artifact.off.pages_ejected);
        assert!(artifact.on.shape_boundary_polls > 0);
    }

    /// A tiny qi-sweep tier: the two arms must agree bit-for-bit on
    /// verdicts/pages while the index arm demonstrably skips work.
    #[test]
    fn qi_sweep_arms_agree_and_index_skips() {
        let shape = SweepShape {
            tiers: &[64],
            seed_rows: 50,
            syncs: 2,
            burst_rows: 20,
        };
        let tier = run_sweep_tier(&shape, 64);
        assert!(
            tier.fingerprints_match,
            "index and scan arms diverged: {tier:?}"
        );
        assert!(
            tier.index.index_skipped > 0,
            "index arm skipped nothing: {tier:?}"
        );
        assert!(
            tier.index.checked_instances < tier.scan.checked_instances,
            "index arm checked no fewer instances: {tier:?}"
        );
    }
}

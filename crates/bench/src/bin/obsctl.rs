//! `obsctl` — command-line client for the CachePortal observability surface.
//!
//! ```text
//! obsctl metrics --addr 127.0.0.1:9184
//! obsctl health  --addr 127.0.0.1:9184
//! obsctl explain --addr 127.0.0.1:9184 --url 'http://shop/carSearch?maxprice=30000'
//! obsctl explain --file obs-export.jsonl --lsn 5
//! obsctl diff before.json after.json
//! obsctl demo --serve 127.0.0.1:0 --hold-secs 30 --export obs-export.jsonl
//! ```
//!
//! * `metrics` — fetch `/metrics` (Prometheus text exposition) and print it.
//! * `health` — fetch `/healthz` and print the verdict; exits 0 only when
//!   the portal reports healthy (open breakers, recovery in progress, or
//!   WAL errors all turn this non-zero, so scripts can gate on it).
//! * `explain` — fetch `/explain?url=…` / `/explain?lsn=…` from a live admin
//!   endpoint, or reconstruct the same answer offline from a JSONL export,
//!   and pretty-print the eject chains.
//! * `diff` — compare the `metrics.counters` sections of two
//!   `metrics_snapshot()` documents.
//! * `trace` — fetch `/trace` and print the recent events with their causal
//!   ids (trace/span/parent) as a table, or raw with `--json`.
//! * `timeline` — fetch the per-sync-point phase timeline from `/timeline`
//!   (tabular or `--json`; `--stable` zeroes wall-clock fields for
//!   byte-stable output; `--chrome FILE` writes Chrome `trace_event` JSON
//!   loadable in `chrome://tracing` / Perfetto).
//! * `scorecard` — fetch the per-query-type cost/benefit scorecards from
//!   `/scorecards` and render them as a table, or raw with `--json`.
//! * `slo` — fetch the freshness SLO document from `/slo` and render the
//!   per-objective burn rates, firing alerts, and recent transitions
//!   (`--json` for raw, `--stable` for the deterministic rendering); exits
//!   non-zero when any burn-rate alert is firing, so scripts can gate on
//!   the freshness contract exactly like they gate on `health`.
//! * `blackbox` — trigger `/flightrecord?dump=1` on a live portal and write
//!   the self-contained black-box bundle to `--out FILE` for offline
//!   post-mortems (`--stable` for the byte-stable rendering, `--index` to
//!   list the recorder's capture ring instead).
//! * `demo` — run a small car-search workload, start the admin endpoint,
//!   write a JSONL export, print one explain chain, and hold the server open
//!   (CI smoke-tests `/metrics` and `/healthz` against it).

use cacheportal::cache::{PageCache, PageCacheConfig};
use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::CachePortal;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("health") => cmd_health(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("timeline") => cmd_timeline(&args[1..]),
        Some("scorecard") => cmd_scorecard(&args[1..]),
        Some("slo") => cmd_slo(&args[1..]),
        Some("bus") => cmd_bus(&args[1..]),
        Some("blackbox") => cmd_blackbox(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        _ => {
            eprintln!(
                "usage: obsctl <metrics|health|explain|trace|timeline|scorecard|slo|bus|blackbox|\
                 diff|demo> [options]"
            );
            eprintln!("  metrics   --addr HOST:PORT");
            eprintln!("  health    --addr HOST:PORT");
            eprintln!("  explain   (--addr HOST:PORT | --file EXPORT.jsonl) (--url URL | --lsn N)");
            eprintln!("  trace     --addr HOST:PORT [-n N] [--json]");
            eprintln!("  timeline  --addr HOST:PORT [--stable] [--json] [--chrome FILE]");
            eprintln!("  scorecard --addr HOST:PORT [--json]");
            eprintln!("  slo       --addr HOST:PORT [--stable] [--json]");
            eprintln!("  bus       --addr HOST:PORT [--json]");
            eprintln!("  blackbox  --addr HOST:PORT --out FILE [--stable] | --index");
            eprintln!("  diff BEFORE.json AFTER.json");
            eprintln!("  demo --serve HOST:PORT [--hold-secs N] [--export FILE]");
            2
        }
    };
    std::process::exit(code);
}

/// Value of `--flag` in `args`, if present.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_metrics(args: &[String]) -> i32 {
    let Some(addr) = flag(args, "--addr") else {
        eprintln!("obsctl metrics: --addr HOST:PORT required");
        return 2;
    };
    match http_get(addr, "/metrics") {
        Ok((200, body)) => {
            print!("{body}");
            0
        }
        Ok((code, body)) => {
            eprintln!("GET /metrics -> {code}\n{body}");
            1
        }
        Err(e) => {
            eprintln!("GET /metrics failed: {e}");
            1
        }
    }
}

fn cmd_health(args: &[String]) -> i32 {
    let Some(addr) = flag(args, "--addr") else {
        eprintln!("obsctl health: --addr HOST:PORT required");
        return 2;
    };
    match http_get(addr, "/healthz") {
        Ok((code, body)) => {
            let verdict = if code == 200 { "healthy" } else { "UNHEALTHY" };
            print!("{verdict} (HTTP {code})\n{body}");
            if !body.ends_with('\n') {
                println!();
            }
            i32::from(code != 200)
        }
        Err(e) => {
            eprintln!("GET /healthz failed: {e}");
            1
        }
    }
}

fn cmd_explain(args: &[String]) -> i32 {
    let url = flag(args, "--url");
    let lsn = flag(args, "--lsn");
    if url.is_none() == lsn.is_none() {
        eprintln!("obsctl explain: exactly one of --url / --lsn required");
        return 2;
    }
    let doc = if let Some(addr) = flag(args, "--addr") {
        let path = match (url, lsn) {
            (Some(u), _) => format!("/explain?url={}", percent_encode(u)),
            (_, Some(l)) => format!("/explain?lsn={l}"),
            _ => unreachable!(),
        };
        match http_get(addr, &path) {
            Ok((200, body)) => match serde_json::from_str(&body) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("invalid JSON from {path}: {e}");
                    return 1;
                }
            },
            Ok((code, body)) => {
                eprintln!("GET {path} -> {code}\n{body}");
                return 1;
            }
            Err(e) => {
                eprintln!("GET {path} failed: {e}");
                return 1;
            }
        }
    } else if let Some(file) = flag(args, "--file") {
        match explain_from_export(file, url, lsn) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("cannot explain from {file}: {e}");
                return 1;
            }
        }
    } else {
        eprintln!("obsctl explain: --addr or --file required");
        return 2;
    };
    print!("{}", render_explanation(&doc));
    0
}

/// Rebuild an `Explanation`-shaped document from the `eject` lines of a
/// JSONL export (the offline twin of the admin endpoint).
fn explain_from_export(
    path: &str,
    url: Option<&str>,
    lsn: Option<&str>,
) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let lsn: Option<u64> = match lsn {
        Some(s) => Some(s.parse().map_err(|_| format!("bad --lsn {s}"))?),
        None => None,
    };
    let mut matches = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v: serde_json::Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        if v["kind"].as_str() != Some("eject") {
            continue;
        }
        let hit = match (url, lsn) {
            (Some(u), _) => v["url"].as_str() == Some(u),
            (_, Some(l)) => {
                v["lsn_first"].as_u64().is_some_and(|f| f <= l)
                    && v["lsn_last"].as_u64().is_some_and(|t| t >= l)
            }
            _ => false,
        };
        if hit {
            matches.push(v);
        }
    }
    Ok(serde_json::Value::Object(vec![
        ("matches".to_string(), serde_json::Value::Array(matches)),
        ("truncated".to_string(), serde_json::Value::Bool(false)),
        ("source".to_string(), serde_json::Value::String(path.to_string())),
    ]))
}

/// Pretty-print one explanation document (live `/explain` response or the
/// offline reconstruction): one block per eject chain.
fn render_explanation(doc: &serde_json::Value) -> String {
    let mut out = String::new();
    let empty = Vec::new();
    let matches = doc["matches"].as_array().unwrap_or(&empty);
    if matches.is_empty() {
        out.push_str("no matching eject records\n");
    }
    for m in matches {
        out.push_str(&format!(
            "eject #{} of {}  (sync #{}, t={}us{})\n",
            m["seq"].as_u64().unwrap_or(0),
            m["url"].as_str().unwrap_or("?"),
            m["sync_seq"].as_u64().unwrap_or(0),
            m["ts"].as_u64().unwrap_or(0),
            if m["resident"].as_bool() == Some(false) {
                ", not resident"
            } else {
                ""
            },
        ));
        out.push_str(&format!(
            "  update log: LSNs {}..={}\n",
            m["lsn_first"].as_u64().unwrap_or(0),
            m["lsn_last"].as_u64().unwrap_or(0)
        ));
        for d in m["deltas"].as_array().unwrap_or(&empty) {
            out.push_str(&format!(
                "  delta: {} +{} / -{}\n",
                d["table"].as_str().unwrap_or("?"),
                d["inserted"].as_u64().unwrap_or(0),
                d["deleted"].as_u64().unwrap_or(0)
            ));
        }
        for c in m["causes"].as_array().unwrap_or(&empty) {
            let params: Vec<&str> = c["params"]
                .as_array()
                .unwrap_or(&empty)
                .iter()
                .filter_map(|p| p.as_str())
                .collect();
            out.push_str(&format!(
                "  cause: type #{} {}\n         params [{}]\n         verdict {} — {}\n",
                c["query_type"].as_u64().unwrap_or(0),
                c["type_sql"].as_str().unwrap_or("?"),
                params.join(", "),
                c["verdict"].as_str().unwrap_or("?"),
                c["detail"].as_str().unwrap_or("")
            ));
        }
    }
    for row in doc["qi_map"].as_array().unwrap_or(&empty) {
        out.push_str(&format!(
            "qi row #{} [{}]: {}\n",
            row["id"].as_u64().unwrap_or(0),
            row["servlet"].as_str().unwrap_or("?"),
            row["sql"].as_str().unwrap_or("?")
        ));
    }
    if doc["truncated"].as_bool() == Some(true) {
        out.push_str(&format!(
            "warning: ring truncated ({} records dropped) — older evidence is gone\n",
            doc["dropped_records"].as_u64().unwrap_or(0)
        ));
    }
    out
}

/// Fetch `path` from `--addr` and parse the JSON body; prints errors and
/// returns `None` on any failure (caller exits non-zero).
fn fetch_json(args: &[String], cmd: &str, path: &str) -> Option<serde_json::Value> {
    let Some(addr) = flag(args, "--addr") else {
        eprintln!("obsctl {cmd}: --addr HOST:PORT required");
        return None;
    };
    match http_get(addr, path) {
        Ok((200, body)) => match serde_json::from_str(&body) {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!("invalid JSON from {path}: {e}");
                None
            }
        },
        Ok((code, body)) => {
            eprintln!("GET {path} -> {code}\n{body}");
            None
        }
        Err(e) => {
            eprintln!("GET {path} failed: {e}");
            None
        }
    }
}

fn cmd_trace(args: &[String]) -> i32 {
    let n: u64 = flag(args, "-n").and_then(|s| s.parse().ok()).unwrap_or(64);
    let Some(doc) = fetch_json(args, "trace", &format!("/trace?n={n}")) else {
        return if flag(args, "--addr").is_none() { 2 } else { 1 };
    };
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&doc).expect("render"));
        return 0;
    }
    let empty = Vec::new();
    let mut rows = vec![vec![
        "seq".to_string(),
        "ts_us".to_string(),
        "trace".to_string(),
        "span".to_string(),
        "parent".to_string(),
        "dur_us".to_string(),
        "scope".to_string(),
        "name".to_string(),
        "detail".to_string(),
    ]];
    for e in doc["recent"].as_array().unwrap_or(&empty) {
        let id = |k: &str| match e[k].as_u64() {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        };
        rows.push(vec![
            e["seq"].as_u64().unwrap_or(0).to_string(),
            e["ts"].as_u64().unwrap_or(0).to_string(),
            id("trace_id"),
            id("span_id"),
            id("parent_span"),
            id("duration_micros"),
            e["scope"].as_str().unwrap_or("?").to_string(),
            e["name"].as_str().unwrap_or("?").to_string(),
            e["detail"].as_str().unwrap_or("").to_string(),
        ]);
    }
    print!("{}", cacheportal_bench::render_table(&rows));
    println!(
        "{} recorded, {} dropped{}",
        doc["recorded"].as_u64().unwrap_or(0),
        doc["dropped"].as_u64().unwrap_or(0),
        if doc["truncated"].as_bool() == Some(true) {
            " (ring truncated — older events are gone)"
        } else {
            ""
        }
    );
    0
}

fn cmd_timeline(args: &[String]) -> i32 {
    if let Some(path) = flag(args, "--chrome") {
        let Some(doc) = fetch_json(args, "timeline", "/timeline?format=chrome") else {
            return if flag(args, "--addr").is_none() { 2 } else { 1 };
        };
        let json = serde_json::to_string(&doc).expect("render");
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        let n = doc["traceEvents"].as_array().map(Vec::len).unwrap_or(0);
        println!("wrote {n} trace events to {path} (open in chrome://tracing or Perfetto)");
        return 0;
    }
    let stable = args.iter().any(|a| a == "--stable");
    let path = if stable { "/timeline?stable=1" } else { "/timeline" };
    let Some(doc) = fetch_json(args, "timeline", path) else {
        return if flag(args, "--addr").is_none() { 2 } else { 1 };
    };
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&doc).expect("render"));
        return 0;
    }
    let empty = Vec::new();
    for t in doc["sync_points"].as_array().unwrap_or(&empty) {
        println!(
            "sync #{} (trace {}): lsns {}..={}, {} records, {} polls, {} ejected, wall {}us",
            t["sync_seq"].as_u64().unwrap_or(0),
            t["trace_id"].as_u64().unwrap_or(0),
            t["lsn_first"].as_u64().unwrap_or(0),
            t["lsn_last"].as_u64().unwrap_or(0),
            t["records"].as_u64().unwrap_or(0),
            t["polls"].as_u64().unwrap_or(0),
            t["ejected"].as_u64().unwrap_or(0),
            t["wall_micros"].as_u64().unwrap_or(0),
        );
        for s in t["stages"].as_array().unwrap_or(&empty) {
            println!(
                "  {:<12} {:>8} us  work={}",
                s["name"].as_str().unwrap_or("?"),
                s["micros"].as_u64().unwrap_or(0),
                s["work"].as_u64().unwrap_or(0),
            );
        }
    }
    println!(
        "{} sync points recorded, {} dropped{}",
        doc["recorded"].as_u64().unwrap_or(0),
        doc["dropped"].as_u64().unwrap_or(0),
        if doc["truncated"].as_bool() == Some(true) {
            " (truncated — older entries or trace events are gone)"
        } else {
            ""
        }
    );
    0
}

fn cmd_scorecard(args: &[String]) -> i32 {
    let Some(doc) = fetch_json(args, "scorecard", "/scorecards") else {
        return if flag(args, "--addr").is_none() { 2 } else { 1 };
    };
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&doc).expect("render"));
        return 0;
    }
    let empty = Vec::new();
    let cards = doc["scorecards"].as_array().unwrap_or(&empty);
    if cards.is_empty() {
        println!("no scorecards yet (no query types attributed)");
        return 0;
    }
    let mut rows = vec![vec![
        "type".to_string(),
        "hits".to_string(),
        "misses".to_string(),
        "hit_rate".to_string(),
        "cost/render".to_string(),
        "inval".to_string(),
        "ejects".to_string(),
        "polls".to_string(),
        "poll_us".to_string(),
        "stale_us".to_string(),
        "idx_hit".to_string(),
        "residual".to_string(),
    ]];
    for c in cards {
        rows.push(vec![
            format!("#{}", c["type_id"].as_u64().unwrap_or(0)),
            c["hits"].as_u64().unwrap_or(0).to_string(),
            c["misses"].as_u64().unwrap_or(0).to_string(),
            format!("{:.3}", c["hit_rate"].as_f64().unwrap_or(0.0)),
            format!("{:.1}", c["avg_render_cost"].as_f64().unwrap_or(0.0)),
            c["invalidations"].as_u64().unwrap_or(0).to_string(),
            c["pages_ejected"].as_u64().unwrap_or(0).to_string(),
            c["polls"].as_u64().unwrap_or(0).to_string(),
            c["poll_spend_micros"].as_u64().unwrap_or(0).to_string(),
            c["staleness_micros"].as_u64().unwrap_or(0).to_string(),
            format!("{:.3}", c["index_hit_rate"].as_f64().unwrap_or(0.0)),
            format!("{:.3}", c["residual_fraction"].as_f64().unwrap_or(0.0)),
        ]);
    }
    print!("{}", cacheportal_bench::render_table(&rows));
    for c in cards {
        println!(
            "type #{}: {}",
            c["type_id"].as_u64().unwrap_or(0),
            c["sql"].as_str().unwrap_or("?")
        );
    }
    println!(
        "version {}, {} urls pending attribution",
        doc["version"].as_u64().unwrap_or(0),
        doc["pending_urls"].as_u64().unwrap_or(0),
    );
    0
}

/// `obsctl slo`: the freshness contract at a glance. Exit status mirrors
/// the alert state — 0 quiet, 1 firing — so scripts can gate deploys on
/// the error budget the same way they gate on `obsctl health`.
fn cmd_slo(args: &[String]) -> i32 {
    let stable = args.iter().any(|a| a == "--stable");
    let path = if stable { "/slo?stable=1" } else { "/slo" };
    let Some(doc) = fetch_json(args, "slo", path) else {
        return if flag(args, "--addr").is_none() { 2 } else { 1 };
    };
    let fast = doc["firing"]["fast"].as_u64().unwrap_or(0);
    let slow = doc["firing"]["slow"].as_u64().unwrap_or(0);
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&doc).expect("render"));
        return i32::from(fast + slow > 0);
    }
    let empty = Vec::new();
    let mut rows = vec![vec![
        "objective".to_string(),
        "goal".to_string(),
        "good".to_string(),
        "bad".to_string(),
        "burn(fast)".to_string(),
        "burn(slow)".to_string(),
        "state".to_string(),
    ]];
    for o in doc["objectives"].as_array().unwrap_or(&empty) {
        let mut burns = ["-".to_string(), "-".to_string()];
        for b in o["burn"].as_array().unwrap_or(&empty) {
            let cell = format!(
                "{:.1}/{:.1}",
                b["short"].as_f64().unwrap_or(0.0),
                b["long"].as_f64().unwrap_or(0.0)
            );
            match b["pair"].as_str() {
                Some("fast") => burns[0] = cell,
                Some("slow") => burns[1] = cell,
                _ => {}
            }
        }
        rows.push(vec![
            o["id"].as_str().unwrap_or("?").to_string(),
            format!("{:.2}", o["goal"].as_f64().unwrap_or(0.0)),
            o["good"].as_u64().unwrap_or(0).to_string(),
            o["bad"].as_u64().unwrap_or(0).to_string(),
            burns[0].clone(),
            burns[1].clone(),
            if o["firing"].as_u64().unwrap_or(0) > 0 {
                "FIRING".to_string()
            } else {
                "ok".to_string()
            },
        ]);
    }
    print!("{}", cacheportal_bench::render_table(&rows));
    for a in doc["alerts"]["recent"].as_array().unwrap_or(&empty) {
        println!(
            "alert #{} t={}us {} {}/{} ({})",
            a["seq"].as_u64().unwrap_or(0),
            a["ts"].as_u64().unwrap_or(0),
            a["state"].as_str().unwrap_or("?"),
            a["objective"].as_str().unwrap_or("?"),
            a["pair"].as_str().unwrap_or("?"),
            a["severity"].as_str().unwrap_or("?"),
        );
    }
    println!(
        "firing: fast={fast} slow={slow} (alerts recorded={} dropped={})",
        doc["alerts"]["recorded"].as_u64().unwrap_or(0),
        doc["alerts"]["dropped"].as_u64().unwrap_or(0),
    );
    i32::from(fast + slow > 0)
}

/// Per-edge invalidation-bus health: acked watermark, lag behind the
/// latest published batch, retry/failure spend, and partition state.
/// Exits 1 when any edge is partitioned or degraded so scripts can gate
/// on bus health the same way `slo` gates on burn alerts.
fn cmd_bus(args: &[String]) -> i32 {
    let Some(doc) = fetch_json(args, "bus", "/bus") else {
        return if flag(args, "--addr").is_none() { 2 } else { 1 };
    };
    if doc.as_object().map(|o| o.is_empty()).unwrap_or(true) && doc["edges"].as_array().is_none() {
        eprintln!("no bus attached (portal is running without edges)");
        return 1;
    }
    let empty = Vec::new();
    let edges = doc["edges"].as_array().unwrap_or(&empty);
    let unhealthy = edges
        .iter()
        .filter(|e| {
            e["partitioned"].as_bool() == Some(true) || e["degraded"].as_bool() == Some(true)
        })
        .count();
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&doc).expect("render"));
        return i32::from(unhealthy > 0);
    }
    let mut rows = vec![vec![
        "edge".to_string(),
        "link".to_string(),
        "acked".to_string(),
        "lag".to_string(),
        "state".to_string(),
        "fail-rounds".to_string(),
        "retries".to_string(),
        "failures".to_string(),
        "applied".to_string(),
        "dupes".to_string(),
        "gaps".to_string(),
        "ejected".to_string(),
        "flushed".to_string(),
    ]];
    for e in edges {
        let state = if e["partitioned"].as_bool() == Some(true) {
            "PARTITIONED"
        } else if e["degraded"].as_bool() == Some(true) {
            "DEGRADED"
        } else {
            "ok"
        };
        let n = |k: &str| e[k].as_u64().unwrap_or(0).to_string();
        rows.push(vec![
            e["name"].as_str().unwrap_or("?").to_string(),
            if e["connected"].as_bool() == Some(true) {
                "local".to_string()
            } else {
                "remote".to_string()
            },
            n("acked"),
            n("lag"),
            state.to_string(),
            n("consec_failed_rounds"),
            n("retries"),
            n("failures"),
            n("applied_batches"),
            n("duplicates_absorbed"),
            n("gaps_buffered"),
            n("ejected_pages"),
            n("flushed_pages"),
        ]);
    }
    print!("{}", cacheportal_bench::render_table(&rows));
    println!(
        "latest_seq={} published={} rounds={} retained={} catch_up={} reboots={} \
         partitioned_edges={}",
        doc["latest_seq"].as_u64().unwrap_or(0),
        doc["published"].as_u64().unwrap_or(0),
        doc["rounds"].as_u64().unwrap_or(0),
        doc["retained"].as_u64().unwrap_or(0),
        doc["catch_up_batches"].as_u64().unwrap_or(0),
        doc["reboots"].as_u64().unwrap_or(0),
        doc["partitioned_edges"].as_u64().unwrap_or(0),
    );
    i32::from(unhealthy > 0)
}

/// `obsctl blackbox`: pull a flight-record dump off a live portal for an
/// offline post-mortem, or list the recorder's capture index.
fn cmd_blackbox(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--index") {
        let Some(doc) = fetch_json(args, "blackbox", "/flightrecord") else {
            return if flag(args, "--addr").is_none() { 2 } else { 1 };
        };
        if doc["schema"].as_str() != Some("cacheportal.flightrecord.v1.index") {
            eprintln!("unexpected index schema: {:?}", doc["schema"].as_str());
            return 1;
        }
        println!("{}", serde_json::to_string_pretty(&doc).expect("render"));
        return 0;
    }
    let Some(out) = flag(args, "--out") else {
        eprintln!("obsctl blackbox: --out FILE required");
        return 2;
    };
    let stable = args.iter().any(|a| a == "--stable");
    let path = if stable {
        "/flightrecord?dump=1&stable=1"
    } else {
        "/flightrecord?dump=1"
    };
    let Some(doc) = fetch_json(args, "blackbox", path) else {
        return if flag(args, "--addr").is_none() { 2 } else { 1 };
    };
    if doc["schema"].as_str() != Some("cacheportal.flightrecord.v1") {
        eprintln!("unexpected dump schema: {:?}", doc["schema"].as_str());
        return 1;
    }
    let rendered = serde_json::to_string_pretty(&doc).expect("render");
    if let Err(e) = std::fs::write(out, &rendered) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }
    println!(
        "wrote {out}: {} bytes, reason {:?}, t={}us{}",
        rendered.len(),
        doc["reason"].as_str().unwrap_or("?"),
        doc["ts"].as_u64().unwrap_or(0),
        if stable { " (stable)" } else { "" },
    );
    0
}

fn cmd_diff(args: &[String]) -> i32 {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
        eprintln!("obsctl diff: two snapshot files required");
        return 2;
    };
    let load = |p: &str| -> Result<Vec<(String, u64)>, String> {
        let text = std::fs::read_to_string(p).map_err(|e| e.to_string())?;
        let doc: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
        match &doc["metrics"]["counters"] {
            serde_json::Value::Object(fields) => Ok(fields
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
                .collect()),
            _ => Err("no metrics.counters section".to_string()),
        }
    };
    let (before, after) = match (load(a), load(b)) {
        (Ok(x), Ok(y)) => (x, y),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("obsctl diff: {e}");
            return 1;
        }
    };
    let old: std::collections::BTreeMap<_, _> = before.into_iter().collect();
    let mut changed = 0;
    for (k, v) in &after {
        let prev = old.get(k).copied().unwrap_or(0);
        if *v != prev {
            println!("{k}: {prev} -> {v} ({:+})", *v as i64 - prev as i64);
            changed += 1;
        }
    }
    if changed == 0 {
        println!("no counter changes");
    }
    0
}

fn cmd_demo(args: &[String]) -> i32 {
    let Some(addr) = flag(args, "--serve") else {
        eprintln!("obsctl demo: --serve HOST:PORT required");
        return 2;
    };
    let hold_secs: u64 = flag(args, "--hold-secs").and_then(|s| s.parse().ok()).unwrap_or(30);

    let portal = demo_portal();
    // Two edge caches behind the bus so `/bus` (and `obsctl bus`) shows a
    // live watermark table instead of the no-edges placeholder.
    for _ in 0..2 {
        portal.register_edge_cache(Arc::new(PageCache::new(PageCacheConfig::default())));
    }
    let req = |maxprice: i64| {
        HttpRequest::get("shop.example.com", "/carSearch", &[("maxprice", &maxprice.to_string())])
    };
    // Populate, sync, mutate, sync: leaves real eject chains behind.
    portal.request(&req(20000));
    portal.request(&req(30000));
    portal.sync_point().expect("sync");
    portal.advance_clock(1_000);
    portal.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").expect("update");
    portal.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").expect("update");
    portal.sync_point().expect("sync");

    if let Some(path) = flag(args, "--export") {
        let mut f = std::fs::File::create(path).expect("create export file");
        let stats = portal.export_jsonl(&mut f).expect("export");
        println!(
            "exported {} trace events + {} eject records to {path}",
            stats.trace_events, stats.eject_records
        );
    }

    for rec in portal.obs().provenance.recent(1) {
        println!("latest eject chain:");
        print!("{}", render_explanation(&portal.explain_invalidation(&rec.url)));
    }

    let server = portal.serve_admin(addr).expect("bind admin endpoint");
    println!("admin listening on {}", server.addr());
    println!("try: obsctl metrics --addr {}", server.addr());
    std::thread::sleep(std::time::Duration::from_secs(hold_secs));
    server.shutdown();
    0
}

/// The paper's running car-search example, assembled as a live portal.
fn demo_portal() -> CachePortal {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .expect("schema");
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .expect("schema");
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .expect("seed");
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .expect("seed");
    let portal = CachePortal::builder(db).build().expect("build portal");
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    )));
    portal
}

/// Minimal blocking HTTP/1.1 GET (the admin endpoint always closes the
/// connection after one response).
fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let code = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((code, body))
}

/// Percent-encode a query-parameter value (everything but unreserved chars).
fn percent_encode(s: &str) -> String {
    s.bytes()
        .map(|b| {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~') {
                (b as char).to_string()
            } else {
                format!("%{b:02X}")
            }
        })
        .collect()
}

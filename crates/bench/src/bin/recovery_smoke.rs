//! `recovery_smoke` — crash-recovery smoke test and checkpoint-interval
//! sweep.
//!
//! ```text
//! recovery_smoke            # CI smoke: one crash, assert the recovery contract
//! recovery_smoke --table    # EXPERIMENTS sweep: recovery cost vs checkpoint interval
//! ```
//!
//! The smoke mode builds a durable portal, makes some pages durable and
//! leaves one page plus two updates in the durability gap, "crashes"
//! (drops the portal while the DBMS and page cache survive), recovers, and
//! asserts the paper's safety contract end to end: the gap page is
//! conservatively ejected with recovery-gap provenance, the replayed
//! update tail re-ejects what it must, and the freshness oracle finds zero
//! stale pages afterwards. `--table` sweeps the checkpoint interval and
//! prints the recovery-time / WAL-replay / over-ejection table that
//! EXPERIMENTS.md quotes.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{
    shared, HttpRequest, ParamSource, QueryTemplate, ServletSpec, SharedDb, SqlServlet,
};
use cacheportal::{CachePortal, Served};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => smoke(),
        Some("--table") => table(),
        Some(other) => {
            eprintln!("usage: recovery_smoke [--table] (got {other:?})");
            std::process::exit(2);
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cp-recovery-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create durable dir");
    d
}

fn car_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .expect("schema");
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .expect("schema");
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .expect("seed");
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .expect("seed");
    db
}

fn register(portal: &CachePortal) {
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    )));
}

fn req(maxprice: i64) -> HttpRequest {
    HttpRequest::get("shop.example.com", "/carSearch", &[("maxprice", &maxprice.to_string())])
}

fn build(db: SharedDb, dir: &Path, interval: u64) -> CachePortal {
    let p = CachePortal::builder_shared(db)
        .durable(dir)
        .checkpoint_interval(interval)
        .build()
        .expect("build durable portal");
    register(&p);
    p
}

fn check(cond: bool, what: &str) {
    if cond {
        println!("  ok: {what}");
    } else {
        eprintln!("recovery smoke FAILED: {what}");
        std::process::exit(1);
    }
}

fn smoke() {
    let dir = temp_dir("smoke");
    let db = shared(car_db());
    let p = build(db.clone(), &dir, 4);

    // Two pages made durable by the sync point…
    p.request(&req(20000));
    p.request(&req(30000));
    p.sync_point().expect("sync");
    // …one page and two updates left in the durability gap.
    p.request(&req(26000));
    p.update("INSERT INTO Mileage VALUES ('Camry', 30.0)").expect("update");
    p.update("INSERT INTO Car VALUES ('Toyota','Camry',22000)").expect("update");
    let cache = p.page_cache().clone();
    let gap_key = p.request(&req(26000)).key.expect("cached page has a key");
    drop(p); // crash: sniffer logs, invalidator, and metrics die here

    let t0 = Instant::now();
    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .checkpoint_interval(4)
        .surviving_cache(cache.clone())
        .recover()
        .expect("recover from durable journal");
    let recover_us = t0.elapsed().as_micros();
    register(&p2);

    let stats = p2.recovery_stats().expect("recovered portal has stats").clone();
    println!(
        "recovered in {recover_us}us: {} map entries, {} origins, {} WAL records, \
         resumed at LSN {} / sync #{}",
        stats.map_entries, stats.origins, stats.wal_records, stats.resumed_consumed,
        stats.resumed_sync_seq,
    );
    check(stats.gap_ejected == 1, "exactly the gap page is conservatively ejected");
    check(!cache.contains(&gap_key), "gap page is out of the surviving cache");
    check(
        serde_json::to_string(&p2.explain_invalidation(gap_key.as_str()))
            .expect("explain serializes")
            .contains("recovery-gap"),
        "gap eject carries recovery-gap provenance",
    );
    check(p2.obs().health.snapshot().recoveries == 1, "health reports the recovery");

    // The replayed update tail must re-eject the affected durable pages…
    let report = p2.sync_point().expect("post-recovery sync");
    check(report.ejected >= 1, "replayed tail re-ejects the update's victims");
    // …after which the always-recompute oracle finds nothing stale.
    check(p2.stale_pages().is_empty(), "zero stale pages after recovery + sync");
    check(
        p2.request(&req(30000)).response.body.contains("Camry"),
        "regenerated page sees the update applied in the gap",
    );
    check(
        p2.request(&req(20000)).served == Served::CacheHit,
        "untouched durable page still serves from the surviving cache",
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!("recovery smoke OK");
}

/// One sweep cell: populate `pages` pages across `syncs` sync points with
/// an update per round, crash, and measure what recovery costs.
fn cell(interval: u64, pages: i64, syncs: u64) -> (u128, u64, u64, usize) {
    let dir = temp_dir(&format!("table-{interval}"));
    let db = shared(car_db());
    let p = build(db.clone(), &dir, interval);
    let per_round = (pages / syncs as i64).max(1);
    let mut price = 15000;
    for round in 0..syncs {
        for _ in 0..per_round {
            p.request(&req(price));
            price += 500;
        }
        p.update(&format!(
            "UPDATE Car SET price = {} WHERE model = 'Civic'",
            17000 + round as i64
        ))
        .expect("update");
        p.sync_point().expect("sync");
    }
    // Leave two admissions in the gap so over-ejection is visible.
    p.request(&req(price));
    p.request(&req(price + 500));
    let cache = p.page_cache().clone();
    drop(p);

    let t0 = Instant::now();
    let p2 = CachePortal::builder_shared(db)
        .durable(&dir)
        .checkpoint_interval(interval)
        .surviving_cache(cache)
        .recover()
        .expect("recover");
    let us = t0.elapsed().as_micros();
    register(&p2);
    let stats = p2.recovery_stats().expect("stats").clone();
    p2.sync_point().expect("post-recovery sync");
    assert!(p2.stale_pages().is_empty(), "interval {interval}: stale after recovery");
    let _ = std::fs::remove_dir_all(&dir);
    (us, stats.wal_records, stats.gap_ejected as u64, stats.map_entries)
}

fn table() {
    println!(
        "| checkpoint interval | recovery time (µs) | WAL records replayed | \
         gap ejects | map entries recovered |"
    );
    println!("|---:|---:|---:|---:|---:|");
    for interval in [1u64, 2, 4, 8, 16, 32] {
        let (us, wal, gap, map) = cell(interval, 54, 18);
        println!("| {interval} | {us} | {wal} | {gap} | {map} |");
    }
}

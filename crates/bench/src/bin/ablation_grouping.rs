//! **Fig E4**: grouping/sharing ablation. The paper's invalidator processes
//! related query instances and related updates as groups (§4.1.2, §4.2.1);
//! in this implementation that shows up as (a) per-sync-point deduplication
//! of identical residual polling queries and (b) maintained join-attribute
//! indexes answering polls without touching the DBMS.
//!
//! This binary scales the number of distinct cached pages (query instances)
//! and reports how many DBMS polls a naive per-(instance, tuple) poller
//! would have issued versus what CachePortal actually issued.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin ablation_grouping
//! ```

use cacheportal_bench::ablation::{run_workload, FreshnessMode, WorkloadConfig};
use cacheportal_bench::{render_table, write_artifact};
use serde::Serialize;

#[derive(Serialize)]
struct GroupingPoint {
    requests_per_round: usize,
    maintained_indexes: bool,
    batch_polls: bool,
    baseline_polls: u64,
    actual_polls: u64,
    saved_by_cache: u64,
    saved_by_index: u64,
    observability: serde_json::Value,
}

fn main() {
    let mut points = Vec::new();
    for &requests_per_round in &[10usize, 20, 40, 80] {
        // The naive baseline: per-tuple polls, no indexes.
        let baseline = run_workload(&WorkloadConfig {
            rounds: 25,
            requests_per_round,
            updates_per_round: 10,
            mode: FreshnessMode::Exact,
            maintained_indexes: false,
            batch_polls: false,
            ..Default::default()
        });
        for (batch_polls, maintained_indexes) in
            [(false, false), (true, false), (true, true)]
        {
            let config = WorkloadConfig {
                rounds: 25,
                requests_per_round,
                updates_per_round: 10,
                mode: FreshnessMode::Exact,
                maintained_indexes,
                batch_polls,
                ..Default::default()
            };
            let r = run_workload(&config);
            points.push(GroupingPoint {
                requests_per_round,
                maintained_indexes,
                batch_polls,
                baseline_polls: baseline.polls_issued,
                actual_polls: r.polls_issued,
                saved_by_cache: r.polls_saved_by_cache,
                saved_by_index: r.polls_saved_by_index,
                observability: r.observability,
            });
        }
    }

    let mut rows = vec![vec![
        "req/round".to_string(),
        "batched".to_string(),
        "indexes".to_string(),
        "baseline polls".to_string(),
        "actual polls".to_string(),
        "dedup saved".to_string(),
        "index saved".to_string(),
        "reduction".to_string(),
    ]];
    for p in &points {
        let reduction = if p.baseline_polls == 0 {
            "-".to_string()
        } else {
            format!(
                "{:.0}%",
                (1.0 - p.actual_polls as f64 / p.baseline_polls as f64) * 100.0
            )
        };
        rows.push(vec![
            p.requests_per_round.to_string(),
            if p.batch_polls { "yes" } else { "no" }.to_string(),
            if p.maintained_indexes { "yes" } else { "no" }.to_string(),
            p.baseline_polls.to_string(),
            p.actual_polls.to_string(),
            p.saved_by_cache.to_string(),
            p.saved_by_index.to_string(),
            reduction,
        ]);
    }
    println!("Fig E4: polling-query sharing (grouping) ablation\n");
    println!("{}", render_table(&rows));
    println!(
        "Expected shape: OR-batching (§4.2.1 grouping) collapses each update\n\
         burst into one poll per live instance; maintained join-attribute\n\
         indexes absorb most of what remains. Residual dedup only fires when\n\
         instances share identical residual SQL (rare in this workload)."
    );
    match write_artifact("ablation_grouping", &points) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}

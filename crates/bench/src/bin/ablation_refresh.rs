//! **Fig E7**: invalidation vs. time-based refresh (the paper's §1 critique
//! of the Oracle9i web cache's periodic refreshing: it "results in a
//! significant amount of unnecessary computation overhead at the web server,
//! the application server, and the databases" and still cannot guarantee
//! freshness).
//!
//! Configuration III is simulated with its cache kept fresh either by the
//! CachePortal invalidator (one cheap poll per interval) or by regenerating
//! N cached pages through the full backend every interval.
//!
//! ```text
//! cargo run --release -p cacheportal-bench --bin ablation_refresh
//! ```

use cacheportal_bench::{render_table, write_artifact};
use cacheportal_sim::{
    simulate, ConfigRow, Configuration, Freshness, SimParams, UpdateRate,
};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    mechanism: String,
    refresh_pages_per_interval: usize,
    exp_resp_ms: Option<f64>,
    miss_db_ms: Option<f64>,
    db_utilization: f64,
}

fn db_util(r: &cacheportal_sim::RunResult) -> f64 {
    r.stations
        .iter()
        .find(|(name, _, _)| name == "db")
        .map(|(_, u, _)| *u)
        .unwrap_or(0.0)
}

fn main() {
    let base = SimParams::paper_baseline().with_update_rate(UpdateRate::MEDIUM);
    let mut points = Vec::new();

    let inval = simulate(Configuration::WebCache, &base);
    points.push(Point {
        mechanism: "invalidation".into(),
        refresh_pages_per_interval: 0,
        exp_resp_ms: inval.row.all_resp.mean_ms(),
        miss_db_ms: inval.row.miss_db.mean_ms(),
        db_utilization: db_util(&inval),
    });
    for &pages in &[5usize, 10, 20, 40] {
        let params = base
            .clone()
            .with_freshness(Freshness::PeriodicRefresh {
                pages_per_interval: pages,
            });
        let r = simulate(Configuration::WebCache, &params);
        points.push(Point {
            mechanism: format!("refresh {pages}/s"),
            refresh_pages_per_interval: pages,
            exp_resp_ms: r.row.all_resp.mean_ms(),
            miss_db_ms: r.row.miss_db.mean_ms(),
            db_utilization: db_util(&r),
        });
    }

    let mut rows = vec![vec![
        "mechanism".to_string(),
        "exp resp (ms)".to_string(),
        "miss DB (ms)".to_string(),
        "DB utilization".to_string(),
    ]];
    for p in &points {
        rows.push(vec![
            p.mechanism.clone(),
            ConfigRow::fmt_cell(p.exp_resp_ms),
            ConfigRow::fmt_cell(p.miss_db_ms),
            format!("{:.0}%", p.db_utilization * 100.0),
        ]);
    }
    println!(
        "Fig E7: Conf III freshness mechanism ablation (update load <5,5,5,5>)\n"
    );
    println!("{}", render_table(&rows));
    println!(
        "Expected shape: refresh traffic loads the backend in proportion to the\n\
         cached page count — pure overhead when nothing changed — and drags every\n\
         user-visible miss with it, while invalidation's polling cost is one cheap\n\
         query per interval. (And unlike invalidation, refresh still serves stale\n\
         pages between refreshes — see the functional ablation, Fig E3.)"
    );
    match write_artifact("ablation_refresh", &points) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }
}

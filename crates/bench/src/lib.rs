#![warn(missing_docs)]

//! Experiment harness shared by the table/sweep binaries and the criterion
//! benches: run matrices of simulations and functional-system workloads and
//! print them in the paper's table shapes.

pub mod ablation;
pub mod tables;

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Write a JSON artifact under `results/` (created on demand) so that
/// EXPERIMENTS.md numbers are regenerable and diffable.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let json = serde_json::to_string_pretty(value).expect("serializable");
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

/// Append one run record to a JSON trajectory file at `path`: the file
/// holds `{"history": [run, run, ...]}` so successive bench runs accumulate
/// a perf trajectory instead of overwriting each other (CI uploads the file
/// as an artifact). A legacy single-run artifact already at `path` is
/// adopted as the first history entry; an unreadable file starts a fresh
/// history rather than failing the bench. Returns the new history length.
pub fn append_history<T: Serialize>(path: &str, run: &T) -> std::io::Result<usize> {
    use serde::Value;
    let run_val = run.serialize_value();
    let mut history: Vec<Value> = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str::<Value>(&text) {
            Ok(Value::Object(fields)) => match fields.iter().find(|(k, _)| k == "history") {
                Some((_, Value::Array(runs))) => runs.clone(),
                _ => vec![Value::Object(fields)],
            },
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    history.push(run_val);
    let runs = history.len();
    let doc = Value::Object(vec![("history".to_string(), Value::Array(history))]);
    let mut f = std::fs::File::create(path)?;
    let json = serde_json::to_string_pretty(&doc).expect("serializable");
    f.write_all(json.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(runs)
}

/// Render a fixed-width text table (first row = header).
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            if i > 0 {
                out.push_str("  ");
            }
            let pad = w - cell.chars().count();
            // Right-align numbers (all but the first column).
            if i == 0 {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        // Trim trailing spaces for clean diffs.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(&[
            vec!["row".into(), "a".into(), "bb".into()],
            vec!["x".into(), "10".into(), "2".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("row"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("10"));
    }
}

//! Ablations over the *functional* CachePortal system (not the simulator):
//!
//! * **Policy ablation (Fig E3)** — Exact vs Conservative vs TableLevel vs
//!   a TTL-refresh baseline: invalidation volume, over-invalidation (pages
//!   ejected whose content had not actually changed), polling load, hit
//!   ratio, and staleness.
//! * **Grouping ablation (Fig E4)** — how many polling queries the
//!   per-sync-point dedup cache and the maintained indexes save relative to
//!   a naive per-(instance,tuple) poller.

use cacheportal::{CachePortal, Served};
use cacheportal_cache::{EvictionPolicy, PageCacheConfig};
use cacheportal_db::schema::ColType;
use cacheportal_db::Database;
use cacheportal_invalidator::{InvalidationPolicy, InvalidatorConfig};
use cacheportal_web::{HttpRequest, PageKey, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// The paper's §5.2.1 application: one small table (500 rows), one large
/// table (2500 rows), a shared join attribute with 10 uniform values, and
/// three page classes (light/medium/heavy) with selectivity 0.1.
pub fn paper_application(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.execute("CREATE TABLE small (id INT, grp INT, val INT, INDEX(grp))")
        .unwrap();
    db.execute("CREATE TABLE large (id INT, grp INT, val INT, INDEX(grp))")
        .unwrap();
    for i in 0..500 {
        let grp = i % 10;
        let val = rng.gen_range(0..1000);
        db.insert_row("small", vec![(i as i64).into(), (grp as i64).into(), (val as i64).into()])
            .unwrap();
    }
    for i in 0..2500 {
        let grp = i % 10;
        let val = rng.gen_range(0..1000);
        db.insert_row("large", vec![(i as i64).into(), (grp as i64).into(), (val as i64).into()])
            .unwrap();
    }
    db
}

/// Register the three page servlets of §5.2.1.
pub fn register_paper_servlets(portal: &CachePortal) {
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("light").with_key_get_params(&["grp"]),
        "Light page",
        vec![QueryTemplate::new(
            "SELECT id, val FROM small WHERE grp = $1 ORDER BY id",
            vec![ParamSource::Get("grp".into(), ColType::Int)],
        )],
    )));
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("medium").with_key_get_params(&["grp"]),
        "Medium page",
        vec![QueryTemplate::new(
            "SELECT id, val FROM large WHERE grp = $1 ORDER BY id",
            vec![ParamSource::Get("grp".into(), ColType::Int)],
        )],
    )));
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("heavy").with_key_get_params(&["grp"]),
        "Heavy page",
        vec![QueryTemplate::new(
            // Example 4.1 shape: a local selection plus one equi-join
            // attribute, so the residual poll is a single equality.
            "SELECT small.id, small.val, large.id FROM small, large \
             WHERE small.grp = $1 AND small.val = large.val \
             ORDER BY small.id, large.id",
            vec![ParamSource::Get("grp".into(), ColType::Int)],
        )],
    )));
}

/// Which freshness mechanism a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreshnessMode {
    /// Local checks + residual polling queries.
    Exact,
    /// Local checks only; never polls.
    Conservative,
    /// Any update to a read table invalidates every instance.
    TableLevel,
    /// No invalidator: time-based expiry only (the Oracle9i-style baseline
    /// the paper argues against).
    Ttl {
        /// Expiry horizon in sync intervals.
        ttl_intervals: u64,
    },
}

impl FreshnessMode {
    /// Display label (artifact key).
    pub fn label(&self) -> String {
        match self {
            FreshnessMode::Exact => "exact".into(),
            FreshnessMode::Conservative => "conservative".into(),
            FreshnessMode::TableLevel => "table-level".into(),
            FreshnessMode::Ttl { ttl_intervals } => format!("ttl-{ttl_intervals}"),
        }
    }
}

/// Knobs for one functional-workload run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Workload seed.
    pub seed: u64,
    /// Workload rounds ("seconds"): each round issues requests and updates,
    /// then runs a sync point.
    pub rounds: usize,
    /// Page requests issued per round.
    pub requests_per_round: usize,
    /// Update statements per round.
    pub updates_per_round: usize,
    /// Freshness mechanism under test.
    pub mode: FreshnessMode,
    /// Use maintained join-attribute indexes in the invalidator.
    pub maintained_indexes: bool,
    /// OR-combine residual polls per update batch (§4.2.1 grouping).
    pub batch_polls: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 7,
            rounds: 30,
            requests_per_round: 30,
            updates_per_round: 10,
            mode: FreshnessMode::Exact,
            maintained_indexes: false,
            batch_polls: true,
        }
    }
}

/// Measured outcome of one run.
#[derive(Debug, Default, Serialize, Clone)]
pub struct WorkloadResult {
    /// Freshness mechanism under test.
    pub mode: String,
    /// Total requests issued.
    pub requests: u64,
    /// Requests served from the cache.
    pub cache_hits: u64,
    /// Pages removed by invalidation.
    pub pages_ejected: u64,
    /// Ejected pages whose regenerated content was identical — pure
    /// over-invalidation.
    pub ejected_unchanged: u64,
    /// Polling queries sent to the DBMS.
    pub polls_issued: u64,
    /// Polls answered by the per-sync dedup cache.
    pub polls_saved_by_cache: u64,
    /// Polls answered by maintained indexes.
    pub polls_saved_by_index: u64,
    /// Sum over rounds of stale cached pages observed *after* the round's
    /// freshness action (always 0 for invalidation modes; nonzero for TTL).
    pub stale_page_rounds: u64,
    /// Achieved cache hit ratio.
    pub hit_ratio: f64,
    /// The portal's full `metrics_snapshot()` at the end of the run
    /// (registry counters/histograms, staleness window, recent trace).
    pub observability: serde_json::Value,
}

/// Drive the functional system under the configured workload.
pub fn run_workload(config: &WorkloadConfig) -> WorkloadResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let db = paper_application(config.seed);

    let mut inv_cfg = InvalidatorConfig::default();
    inv_cfg.policy.batch_polls = config.batch_polls;
    inv_cfg.policy.default_policy = match config.mode {
        FreshnessMode::Conservative => InvalidationPolicy::Conservative,
        FreshnessMode::TableLevel => InvalidationPolicy::TableLevel,
        _ => InvalidationPolicy::Exact,
    };
    let mut builder = CachePortal::builder(db)
        .invalidator_config(inv_cfg)
        .cache_config(PageCacheConfig {
            capacity: 256,
            policy: EvictionPolicy::Lru,
            ttl_micros: match config.mode {
                // One round advances the clock by its tick count; TTL is
                // denominated in "plenty of ticks per round".
                FreshnessMode::Ttl { ttl_intervals } => Some(ttl_intervals * ROUND_TICKS),
                _ => None,
            },
        });
    if config.maintained_indexes {
        builder = builder.maintain_index("large", "val").maintain_index("small", "val");
    }
    let portal = builder.build().unwrap();
    register_paper_servlets(&portal);

    let mut result = WorkloadResult {
        mode: config.mode.label(),
        ..Default::default()
    };
    // Body each cached page had when last generated (over-invalidation
    // detector).
    let mut last_body: HashMap<PageKey, String> = HashMap::new();
    let mut next_id = 10_000i64;

    for _round in 0..config.rounds {
        for _ in 0..config.requests_per_round {
            let class = ["light", "medium", "heavy"][rng.gen_range(0..3)];
            let grp = rng.gen_range(0..10i64);
            let req =
                HttpRequest::get("shop", &format!("/{class}"), &[("grp", &grp.to_string())]);
            let out = portal.request(&req);
            result.requests += 1;
            if out.served == Served::CacheHit {
                result.cache_hits += 1;
            } else if let Some(key) = out.key {
                last_body.insert(key, out.response.body.clone());
            }
        }
        for _ in 0..config.updates_per_round {
            let table = if rng.gen_bool(0.5) { "small" } else { "large" };
            if rng.gen_bool(0.5) {
                let grp = rng.gen_range(0..10i64);
                portal
                    .update(&format!(
                        "INSERT INTO {table} VALUES ({next_id}, {grp}, {})",
                        rng.gen_range(0..1000)
                    ))
                    .unwrap();
                next_id += 1;
            } else {
                // Delete one pseudo-random row by id.
                let id = rng.gen_range(0..(if table == "small" { 500 } else { 2500 }));
                portal
                    .update(&format!("DELETE FROM {table} WHERE id = {id}"))
                    .unwrap();
            }
        }

        match config.mode {
            FreshnessMode::Ttl { .. } => {
                // No invalidator run: freshness comes from expiry alone.
                portal.advance_clock(ROUND_TICKS);
                result.stale_page_rounds += portal.stale_pages().len() as u64;
            }
            _ => {
                // The sync point fires at the end of the interval: updates
                // committed during the round have aged up to ROUND_TICKS by
                // the time their pages are ejected (the staleness window the
                // probe measures).
                portal.advance_clock(ROUND_TICKS);
                let report = portal.sync_point().unwrap();
                result.pages_ejected += report.ejected as u64;
                result.polls_issued += report.invalidation.polls.issued;
                result.polls_saved_by_cache += report.invalidation.polls.from_cache;
                result.polls_saved_by_index += report.invalidation.polls.from_index;
                // Over-invalidation check: regenerate ejected pages whose
                // last body we know, compare.
                for key in &report.invalidation.pages {
                    if let Some(old) = last_body.get(key) {
                        if let Some((class, grp)) = parse_key(key) {
                            let req = HttpRequest::get(
                                "shop",
                                &format!("/{class}"),
                                &[("grp", &grp.to_string())],
                            );
                            let fresh = portal.request(&req);
                            if fresh.response.body == *old {
                                result.ejected_unchanged += 1;
                            }
                            if let Some(k) = fresh.key {
                                last_body.insert(k, fresh.response.body.clone());
                            }
                        }
                    }
                }
                result.stale_page_rounds += portal.stale_pages().len() as u64;
            }
        }
    }
    result.hit_ratio = if result.requests == 0 {
        0.0
    } else {
        result.cache_hits as f64 / result.requests as f64
    };
    result.observability = portal.metrics_snapshot();
    result
}

/// Logical ticks we advance per round (TTL granularity).
const ROUND_TICKS: u64 = 1_000_000;

/// Recover (servlet, grp) from the canonical page key the workload created.
fn parse_key(key: &PageKey) -> Option<(String, i64)> {
    let s = key.as_str();
    let path_start = s.find('/')?;
    let q = s.find('?')?;
    let class = s[path_start + 1..q].to_string();
    let grp: i64 = s[q + 1..].strip_prefix("g:grp=")?.parse().ok()?;
    Some((class, grp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: FreshnessMode) -> WorkloadResult {
        run_workload(&WorkloadConfig {
            rounds: 6,
            requests_per_round: 20,
            updates_per_round: 6,
            mode,
            ..Default::default()
        })
    }

    #[test]
    fn invalidation_modes_never_serve_stale() {
        for mode in [
            FreshnessMode::Exact,
            FreshnessMode::Conservative,
            FreshnessMode::TableLevel,
        ] {
            let r = quick(mode);
            assert_eq!(r.stale_page_rounds, 0, "{}", r.mode);
        }
    }

    #[test]
    fn exact_polls_conservative_does_not() {
        let exact = quick(FreshnessMode::Exact);
        let cons = quick(FreshnessMode::Conservative);
        assert!(exact.polls_issued > 0);
        assert_eq!(cons.polls_issued, 0);
    }

    #[test]
    fn over_invalidation_ordering() {
        let exact = quick(FreshnessMode::Exact);
        let table = quick(FreshnessMode::TableLevel);
        let exact_rate = exact.ejected_unchanged as f64 / exact.pages_ejected.max(1) as f64;
        let table_rate = table.ejected_unchanged as f64 / table.pages_ejected.max(1) as f64;
        assert!(
            table_rate >= exact_rate,
            "table-level must over-invalidate at least as much: {table_rate} vs {exact_rate}"
        );
        assert!(table.pages_ejected >= exact.pages_ejected);
    }

    #[test]
    fn ttl_baseline_serves_stale_pages() {
        let ttl = quick(FreshnessMode::Ttl { ttl_intervals: 5 });
        assert!(
            ttl.stale_page_rounds > 0,
            "long-TTL cache must be stale under updates"
        );
    }

    #[test]
    fn maintained_indexes_reduce_polls() {
        let base = WorkloadConfig {
            rounds: 6,
            requests_per_round: 20,
            updates_per_round: 6,
            ..Default::default()
        };
        let without = run_workload(&base);
        let with = run_workload(&WorkloadConfig {
            maintained_indexes: true,
            ..base
        });
        assert!(with.polls_saved_by_index > 0);
        assert!(with.polls_issued <= without.polls_issued);
    }

    #[test]
    fn key_parser_round_trips() {
        let k = PageKey::raw("shop/heavy?g:grp=7");
        assert_eq!(parse_key(&k), Some(("heavy".to_string(), 7)));
        assert_eq!(parse_key(&PageKey::raw("nonsense")), None);
    }
}

//! Runners for the paper's Tables 2 and 3 and the §5.1.1 parameter sweeps.

use crate::render_table;
use cacheportal_sim::{
    simulate, Conf2CacheAccess, ConfigRow, Configuration, RunResult, SimParams, UpdateRate,
};
use serde::Serialize;

/// The paper's three update loads, in row order.
pub const UPDATE_LOADS: [UpdateRate; 3] = [UpdateRate::NONE, UpdateRate::MEDIUM, UpdateRate::HIGH];

/// One cell group serialized for the JSON artifact.
#[derive(Debug, Serialize)]
pub struct CellGroup {
    /// Mean DB segment of misses (ms).
    pub miss_db_ms: Option<f64>,
    /// Mean miss response (ms).
    pub miss_resp_ms: Option<f64>,
    /// Mean hit response (ms).
    pub hit_resp_ms: Option<f64>,
    /// Mean response over all requests (ms).
    pub exp_resp_ms: Option<f64>,
    /// Requests completed in the horizon.
    pub completed: u64,
    /// Requests still waiting at the horizon.
    pub censored: u64,
}

impl From<&RunResult> for CellGroup {
    fn from(r: &RunResult) -> Self {
        CellGroup {
            miss_db_ms: r.row.miss_db.mean_ms(),
            miss_resp_ms: r.row.miss_resp.mean_ms(),
            hit_resp_ms: r.row.hit_resp.mean_ms(),
            exp_resp_ms: r.row.all_resp.mean_ms(),
            completed: r.completed_requests,
            censored: r.censored_requests,
        }
    }
}

/// One full table: rows = update loads, columns = configurations.
#[derive(Debug, Serialize)]
pub struct TableResult {
    /// Table name (artifact id).
    pub name: String,
    /// Configuration II access model used.
    pub conf2_access: String,
    /// Rows: (update-load label, per-config cells).
    pub rows: Vec<(String, Vec<(String, CellGroup)>)>,
}

/// Run the full grid for Table 2 (`Negligible`) or Table 3 (`LocalDbms`).
pub fn run_table(name: &str, access: Conf2CacheAccess, base: &SimParams) -> TableResult {
    let mut rows = Vec::new();
    for rate in UPDATE_LOADS {
        let mut cells = Vec::new();
        for conf in Configuration::ALL {
            let params = base
                .clone()
                .with_update_rate(rate)
                .with_conf2_access(access);
            let r = simulate(conf, &params);
            cells.push((conf.label().to_string(), CellGroup::from(&r)));
        }
        rows.push((rate.label(), cells));
    }
    TableResult {
        name: name.to_string(),
        conf2_access: format!("{access:?}"),
        rows,
    }
}

/// Render a [`TableResult`] in the paper's layout.
pub fn format_table(t: &TableResult) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header = vec!["UpdateRate".to_string()];
    for conf in Configuration::ALL {
        for col in ["Miss DB", "Miss Resp", "Hit Resp", "Exp Resp"] {
            header.push(format!("{} {}", conf.label(), col));
        }
    }
    rows.push(header);
    for (label, cells) in &t.rows {
        let mut row = vec![label.clone()];
        for (_, c) in cells {
            row.push(ConfigRow::fmt_cell(c.miss_db_ms));
            row.push(ConfigRow::fmt_cell(c.miss_resp_ms));
            row.push(ConfigRow::fmt_cell(c.hit_resp_ms));
            row.push(ConfigRow::fmt_cell(c.exp_resp_ms));
        }
        rows.push(row);
    }
    render_table(&rows)
}

/// One sweep point.
#[derive(Debug, Serialize)]
pub struct SweepPoint {
    /// Swept parameter value.
    pub x: f64,
    /// Configuration label.
    pub conf: String,
    /// Mean response over all requests (ms).
    pub exp_resp_ms: Option<f64>,
    /// Mean hit response (ms).
    pub hit_resp_ms: Option<f64>,
    /// Mean miss response (ms).
    pub miss_resp_ms: Option<f64>,
}

/// Fig E1: expected response vs. total update rate, Conf II vs Conf III.
pub fn sweep_update_rate(base: &SimParams, steps: &[f64]) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &per_table in steps {
        let rate = UpdateRate {
            ins1: per_table,
            del1: per_table,
            ins2: per_table,
            del2: per_table,
        };
        for conf in [Configuration::MiddleTierCache, Configuration::WebCache] {
            let params = base.clone().with_update_rate(rate);
            let r = simulate(conf, &params);
            out.push(SweepPoint {
                x: rate.total_per_sec(),
                conf: conf.label().to_string(),
                exp_resp_ms: r.row.all_resp.mean_ms(),
                hit_resp_ms: r.row.hit_resp.mean_ms(),
                miss_resp_ms: r.row.miss_resp.mean_ms(),
            });
        }
    }
    out
}

/// Fig E2: expected response vs. hit ratio, all three configurations.
pub fn sweep_hit_ratio(base: &SimParams, ratios: &[f64]) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &h in ratios {
        for conf in Configuration::ALL {
            let params = base.clone().with_hit_ratio(h);
            let r = simulate(conf, &params);
            out.push(SweepPoint {
                x: h,
                conf: conf.label().to_string(),
                exp_resp_ms: r.row.all_resp.mean_ms(),
                hit_resp_ms: r.row.hit_resp.mean_ms(),
                miss_resp_ms: r.row.miss_resp.mean_ms(),
            });
        }
    }
    out
}

/// Render sweep points as a text series table.
pub fn format_sweep(points: &[SweepPoint], x_label: &str) -> String {
    let mut rows = vec![vec![
        x_label.to_string(),
        "config".to_string(),
        "exp (ms)".to_string(),
        "hit (ms)".to_string(),
        "miss (ms)".to_string(),
    ]];
    for p in points {
        rows.push(vec![
            format!("{:.2}", p.x),
            p.conf.clone(),
            ConfigRow::fmt_cell(p.exp_resp_ms),
            ConfigRow::fmt_cell(p.hit_resp_ms),
            ConfigRow::fmt_cell(p.miss_resp_ms),
        ]);
    }
    render_table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_sim::SEC;

    fn quick_params() -> SimParams {
        SimParams::paper_baseline().with_duration(10 * SEC)
    }

    #[test]
    fn table_grid_has_full_shape() {
        let t = run_table("t", Conf2CacheAccess::Negligible, &quick_params());
        assert_eq!(t.rows.len(), 3);
        assert!(t.rows.iter().all(|(_, cells)| cells.len() == 3));
        let text = format_table(&t);
        assert!(text.contains("Conf. I"));
        assert!(text.contains("No Updates"));
        assert!(text.contains("N/A"), "Conf I has no hit column");
    }

    #[test]
    fn sweeps_produce_points_for_each_config() {
        let pts = sweep_update_rate(&quick_params(), &[0.0, 5.0]);
        assert_eq!(pts.len(), 4);
        let pts = sweep_hit_ratio(&quick_params(), &[0.5]);
        assert_eq!(pts.len(), 3);
        assert!(!format_sweep(&pts, "hit_ratio").is_empty());
    }
}

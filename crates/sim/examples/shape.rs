//! Calibration aid: print the full Table 2/3 grid at the paper's horizon.
//! Used when tuning `ServiceTimes`; the publishable runners live in
//! `cacheportal-bench` (`table2`, `table3`).
//!
//! ```text
//! cargo run --release -p cacheportal-sim --example shape
//! ```

use cacheportal_sim::*;
fn main() {
    for rate in [UpdateRate::NONE, UpdateRate::MEDIUM, UpdateRate::HIGH] {
        println!("== {} ==", rate.label());
        for conf in Configuration::ALL {
            let p = SimParams::paper_baseline().with_update_rate(rate);
            let r = simulate(conf, &p);
            println!("{:10} missDB={:>8} missResp={:>8} hit={:>8} exp={:>8}  (done={} censored={})",
                conf.label(),
                ConfigRow::fmt_cell(r.row.miss_db.mean_ms()),
                ConfigRow::fmt_cell(r.row.miss_resp.mean_ms()),
                ConfigRow::fmt_cell(r.row.hit_resp.mean_ms()),
                ConfigRow::fmt_cell(r.row.all_resp.mean_ms()),
                r.completed_requests, r.censored_requests);
        }
    }
    println!("== Table 3 (Conf II LocalDbms) ==");
    for rate in [UpdateRate::NONE, UpdateRate::MEDIUM, UpdateRate::HIGH] {
        let p = SimParams::paper_baseline().with_update_rate(rate).with_conf2_access(Conf2CacheAccess::LocalDbms);
        let r = simulate(Configuration::MiddleTierCache, &p);
        println!("{:12} missDB={:>8} missResp={:>8} hit={:>8} exp={:>8}",
            rate.label(),
            ConfigRow::fmt_cell(r.row.miss_db.mean_ms()),
            ConfigRow::fmt_cell(r.row.miss_resp.mean_ms()),
            ConfigRow::fmt_cell(r.row.hit_resp.mean_ms()),
            ConfigRow::fmt_cell(r.row.all_resp.mean_ms()));
    }
}

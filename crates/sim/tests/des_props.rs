//! Property tests on the discrete-event engine: conservation, FIFO order,
//! monotonicity in service time, and work conservation at a single station.

use cacheportal_sim::{Engine, Step};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every spawned job either completes or stays in flight;
    /// with a generous horizon, all complete.
    #[test]
    fn jobs_are_conserved(
        arrivals in prop::collection::vec((0u64..1_000, 1u64..200), 1..40),
        workers in 1usize..4,
    ) {
        let mut e = Engine::new();
        let s = e.add_station("cpu", workers);
        for (i, (at, dur)) in arrivals.iter().enumerate() {
            e.spawn_at(*at, i as u32, vec![Step::Acquire(s), Step::Busy(*dur), Step::Release(s)]);
        }
        let total_work: u64 = arrivals.iter().map(|(_, d)| *d).sum();
        let horizon = 1_000 + total_work + 10;
        e.run_until(horizon);
        prop_assert_eq!(e.completed().len(), arrivals.len());
        prop_assert_eq!(e.in_flight(), 0);
    }

    /// Single-worker FIFO: jobs entering the queue in arrival order leave
    /// in arrival order, and the station is work-conserving (total busy
    /// time equals total service demand).
    #[test]
    fn single_worker_is_fifo_and_work_conserving(
        arrivals in prop::collection::vec((0u64..500, 1u64..100), 2..30),
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut e = Engine::new();
        let s = e.add_station("cpu", 1);
        for (i, (at, dur)) in sorted.iter().enumerate() {
            e.spawn_at(*at, i as u32, vec![Step::Acquire(s), Step::Busy(*dur), Step::Release(s)]);
        }
        e.run_until(1_000_000);
        let done = e.completed();
        prop_assert_eq!(done.len(), sorted.len());
        // Completion order == arrival order (ties broken by spawn order).
        for w in done.windows(2) {
            prop_assert!(w[0].class < w[1].class, "FIFO violated");
        }
        let total: u64 = sorted.iter().map(|(_, d)| *d).sum();
        let busy = e.station(s).busy_time as u64;
        prop_assert_eq!(busy, total, "work conservation");
        // Utilization never exceeds 1 per worker.
        let horizon = done.last().unwrap().finished;
        prop_assert!(e.station(s).utilization(horizon) <= 1.0 + 1e-9);
    }

    /// Monotonicity: uniformly increasing every service time cannot make
    /// any job finish earlier.
    #[test]
    fn service_time_monotonicity(
        arrivals in prop::collection::vec((0u64..300, 1u64..50), 1..20),
        workers in 1usize..3,
        extra in 1u64..30,
    ) {
        let run = |bump: u64| {
            let mut e = Engine::new();
            let s = e.add_station("cpu", workers);
            for (i, (at, dur)) in arrivals.iter().enumerate() {
                e.spawn_at(
                    *at,
                    i as u32,
                    vec![Step::Acquire(s), Step::Busy(dur + bump), Step::Release(s)],
                );
            }
            e.run_until(10_000_000);
            let mut by_class: Vec<(u32, u64)> =
                e.completed().iter().map(|j| (j.class, j.finished)).collect();
            by_class.sort();
            by_class
        };
        let base = run(0);
        let slower = run(extra);
        for ((c1, f1), (c2, f2)) in base.iter().zip(&slower) {
            prop_assert_eq!(c1, c2);
            prop_assert!(f2 >= f1, "job {} finished earlier with longer service", c1);
        }
    }

    /// Marks never decrease along a program.
    #[test]
    fn marks_are_monotone(
        durs in prop::collection::vec(1u64..50, 1..6),
    ) {
        let mut e = Engine::new();
        let s = e.add_station("cpu", 1);
        let mut steps = Vec::new();
        for (i, d) in durs.iter().enumerate() {
            steps.push(Step::Mark(i as u8));
            steps.push(Step::Acquire(s));
            steps.push(Step::Busy(*d));
            steps.push(Step::Release(s));
        }
        steps.push(Step::Mark(durs.len() as u8));
        e.spawn_at(0, 0, steps);
        e.run_until(1_000_000);
        let job = &e.completed()[0];
        let marks: Vec<u64> = (0..=durs.len())
            .map(|i| job.marks[i].expect("mark recorded"))
            .collect();
        for w in marks.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(
            *marks.last().unwrap() - marks[0],
            durs.iter().sum::<u64>(),
            "uncontended serial busy time adds up exactly"
        );
    }
}

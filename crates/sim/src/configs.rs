//! The three site configurations of the paper's §1 and §5, as
//! discrete-event models.
//!
//! * **Configuration I** — web/app server + *replicated* DBMS per node,
//!   no caching; every update is applied at every replica.
//! * **Configuration II** — one shared DBMS, a middle-tier *data cache* at
//!   each node, synchronized every interval by a "fetch recent updates"
//!   query per cache.
//! * **Configuration III** — one shared DBMS and a *dynamic web-page cache*
//!   in front of the load balancer, kept fresh by the CachePortal
//!   invalidator (whose polling cost is one cheap query per interval,
//!   §5.2.4).

use crate::des::{Engine, SimTime, Step, StationId};
use crate::metrics::{class, collect, RunResult, MARK_DB_END, MARK_DB_START};
use crate::params::{ClientModel, Conf2CacheAccess, Freshness, SimParams};
use crate::workload::{generate_requests, generate_updates, PageClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which deployment to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Configuration {
    /// Conf I: load balancing + DB replication.
    ReplicatedDb,
    /// Conf II: one DB + middle-tier data caches.
    MiddleTierCache,
    /// Conf III: one DB + front web cache (CachePortal).
    WebCache,
}

impl Configuration {
    /// All three configurations, in paper order.
    pub const ALL: [Configuration; 3] = [
        Configuration::ReplicatedDb,
        Configuration::MiddleTierCache,
        Configuration::WebCache,
    ];

    /// Display label (`Conf. I` â¦ `Conf. III`).
    pub fn label(&self) -> &'static str {
        match self {
            Configuration::ReplicatedDb => "Conf. I",
            Configuration::MiddleTierCache => "Conf. II",
            Configuration::WebCache => "Conf. III",
        }
    }
}

struct Site {
    ext_net: StationId,
    site_net: StationId,
    ws: Vec<StationId>,
    app: Vec<StationId>,
}

fn build_site(engine: &mut Engine, params: &SimParams) -> Site {
    let svc = &params.svc;
    let ext_net = engine.add_station("ext_net", svc.ext_net_workers);
    let site_net = engine.add_station("site_net", svc.net_workers);
    let mut ws = Vec::new();
    let mut app = Vec::new();
    for i in 0..params.nodes {
        ws.push(engine.add_station(&format!("ws{i}"), svc.ws_workers));
        app.push(engine.add_station(&format!("as{i}"), svc.as_workers));
    }
    Site {
        ext_net,
        site_net,
        ws,
        app,
    }
}

fn db_service(params: &SimParams, page: PageClass) -> SimTime {
    match page {
        PageClass::Light => params.svc.db_light,
        PageClass::Medium => params.svc.db_medium,
        PageClass::Heavy => params.svc.db_heavy,
    }
}

/// One message traversal of a network station.
fn net_hop(steps: &mut Vec<Step>, net: StationId, msg: SimTime) {
    steps.push(Step::Acquire(net));
    steps.push(Step::Busy(msg));
    steps.push(Step::Release(net));
}

/// WS entry + AS entry (workers held until the matching exit).
fn enter_servers(steps: &mut Vec<Step>, site: &Site, node: usize, params: &SimParams) {
    steps.push(Step::Acquire(site.ws[node]));
    steps.push(Step::Busy(params.svc.ws_pre));
    steps.push(Step::Acquire(site.app[node]));
    steps.push(Step::Busy(params.svc.as_pre));
}

fn exit_servers(steps: &mut Vec<Step>, site: &Site, node: usize, params: &SimParams) {
    steps.push(Step::Busy(params.svc.as_post));
    steps.push(Step::Release(site.app[node]));
    steps.push(Step::Busy(params.svc.ws_post));
    steps.push(Step::Release(site.ws[node]));
}

/// One DB round trip over `net` (None for a co-located replica DB).
fn db_trip(
    steps: &mut Vec<Step>,
    db: StationId,
    service: SimTime,
    net: Option<(StationId, SimTime)>,
) {
    steps.push(Step::Mark(MARK_DB_START));
    if let Some((net, msg)) = net {
        net_hop(steps, net, msg);
    }
    steps.push(Step::Acquire(db));
    steps.push(Step::Busy(service));
    steps.push(Step::Release(db));
    if let Some((net, msg)) = net {
        net_hop(steps, net, msg);
    }
    steps.push(Step::Mark(MARK_DB_END));
}

/// Run one configuration under the given parameters.
///
/// ```
/// use cacheportal_sim::{simulate, Configuration, SimParams, UpdateRate, SEC};
///
/// let params = SimParams::paper_baseline()
///     .with_duration(10 * SEC)
///     .with_update_rate(UpdateRate::MEDIUM);
/// let result = simulate(Configuration::WebCache, &params);
/// assert!(result.completed_requests > 0);
/// assert!(result.row.hit_resp.mean_ms().unwrap() < result.row.miss_resp.mean_ms().unwrap());
/// ```
pub fn simulate(conf: Configuration, params: &SimParams) -> RunResult {
    let mut engine = Engine::new();
    let svc = params.svc.clone();
    let site = build_site(&mut engine, params);

    // Configuration-specific stations.
    let shared_db = engine.add_station("db", svc.db_workers_shared);
    let replica_dbs: Vec<StationId> = (0..params.nodes)
        .map(|i| engine.add_station(&format!("db{i}"), svc.db_workers_replica))
        .collect();
    let dcaches: Vec<StationId> = (0..params.nodes)
        .map(|i| engine.add_station(&format!("dcache{i}"), svc.dcache_workers))
        .collect();
    let web_cache = engine.add_station("web_cache", svc.cache_workers);

    let mut rng = StdRng::seed_from_u64(params.seed);
    let requests = generate_requests(
        &mut rng,
        params.num_req_per_sec,
        params.effective_hit_ratio(),
        params.duration,
    );
    let updates = generate_updates(&mut rng, &params.update_rate, params.duration);

    // Build the step program for one request given its class, its pre-drawn
    // cache outcome, and the node the load balancer picked.
    let make_steps = |page: PageClass, cache_hit: bool, node: usize| -> (u32, Vec<Step>) {
        let mut steps: Vec<Step> = Vec::with_capacity(32);
        let db_svc = db_service(params, page);

        // Conf I has no cache: every request is a miss by construction.
        let effective_hit = cache_hit && conf != Configuration::ReplicatedDb;
        let job_class = class::request(page, effective_hit);

        match conf {
            Configuration::ReplicatedDb => {
                net_hop(&mut steps, site.ext_net, svc.ext_net_msg);
                net_hop(&mut steps, site.site_net, svc.net_msg);
                enter_servers(&mut steps, &site, node, params);
                for _ in 0..params.query_per_request {
                    // Replica DB is co-located: no network hop.
                    db_trip(&mut steps, replica_dbs[node], db_svc, None);
                }
                exit_servers(&mut steps, &site, node, params);
                net_hop(&mut steps, site.site_net, svc.net_msg);
                net_hop(&mut steps, site.ext_net, svc.ext_net_msg);
            }
            Configuration::MiddleTierCache => {
                net_hop(&mut steps, site.ext_net, svc.ext_net_msg);
                net_hop(&mut steps, site.site_net, svc.net_msg);
                enter_servers(&mut steps, &site, node, params);
                let access = match params.conf2_access {
                    Conf2CacheAccess::Negligible => svc.dcache_mem,
                    Conf2CacheAccess::LocalDbms => svc.dcache_conn,
                };
                for _ in 0..params.query_per_request {
                    // Every query consults the node's data cache first.
                    steps.push(Step::Acquire(dcaches[node]));
                    steps.push(Step::Busy(access));
                    steps.push(Step::Release(dcaches[node]));
                    if !effective_hit {
                        db_trip(
                            &mut steps,
                            shared_db,
                            db_svc,
                            Some((site.site_net, svc.net_msg)),
                        );
                    }
                }
                exit_servers(&mut steps, &site, node, params);
                net_hop(&mut steps, site.site_net, svc.net_msg);
                net_hop(&mut steps, site.ext_net, svc.ext_net_msg);
            }
            Configuration::WebCache => {
                net_hop(&mut steps, site.ext_net, svc.ext_net_msg);
                // Front cache handles every request…
                steps.push(Step::Acquire(web_cache));
                steps.push(Step::Busy(svc.cache_lookup));
                steps.push(Step::Release(web_cache));
                if !effective_hit {
                    // …misses continue into the site.
                    net_hop(&mut steps, site.site_net, svc.net_msg);
                    enter_servers(&mut steps, &site, node, params);
                    for _ in 0..params.query_per_request {
                        db_trip(
                            &mut steps,
                            shared_db,
                            db_svc,
                            Some((site.site_net, svc.net_msg)),
                        );
                    }
                    exit_servers(&mut steps, &site, node, params);
                    net_hop(&mut steps, site.site_net, svc.net_msg);
                    // Response stored/forwarded by the cache.
                    steps.push(Step::Acquire(web_cache));
                    steps.push(Step::Busy(svc.cache_lookup));
                    steps.push(Step::Release(web_cache));
                }
                net_hop(&mut steps, site.ext_net, svc.ext_net_msg);
            }
        }
        (job_class, steps)
    };

    // --- request jobs -----------------------------------------------------
    match params.client_model {
        ClientModel::Open => {
            for (seq, req) in requests.iter().enumerate() {
                let node = seq % params.nodes; // round-robin load balancer
                let (job_class, steps) = make_steps(req.class, req.cache_hit, node);
                engine.spawn_at(req.at, job_class, steps);
            }
        }
        ClientModel::Closed { users, think_time } => {
            // Each user issues its next request `think` after the previous
            // response; chains are built back-to-front and sized generously
            // (unstarted tail requests are simply never spawned).
            use crate::des::ChainedJob;
            use rand::Rng;
            let hit_ratio = params.effective_hit_ratio();
            let per_user =
                (params.duration / think_time.max(1)) as usize * 2 + 32;
            for user in 0..users.max(1) {
                let mut chain: Option<Box<ChainedJob>> = None;
                for k in (1..per_user).rev() {
                    let page = PageClass::ALL[rng.gen_range(0..3)];
                    let hit = rng.gen_range(0.0..1.0) < hit_ratio;
                    let node = (user + k) % params.nodes;
                    let (job_class, steps) = make_steps(page, hit, node);
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let delay = (-u.ln() * think_time as f64) as u64;
                    chain = Some(Box::new(ChainedJob {
                        delay,
                        class: job_class,
                        steps,
                        next: chain,
                    }));
                }
                let page = PageClass::ALL[rng.gen_range(0..3)];
                let hit = rng.gen_range(0.0..1.0) < hit_ratio;
                let (job_class, steps) = make_steps(page, hit, user % params.nodes);
                // Stagger user start times across one think interval.
                let start = (user as u64 * think_time) / users.max(1) as u64;
                engine.spawn_chain_at(start, job_class, steps, chain);
            }
        }
    }

    // --- update jobs ----------------------------------------------------
    for upd in &updates {
        match conf {
            Configuration::ReplicatedDb => {
                // dist_synch_cost: the update is applied at every replica.
                for db in &replica_dbs {
                    let mut steps = Vec::with_capacity(8);
                    net_hop(&mut steps, site.site_net, svc.net_msg);
                    steps.push(Step::Acquire(*db));
                    steps.push(Step::Busy(svc.db_update));
                    steps.push(Step::Release(*db));
                    engine.spawn_at(upd.at, class::KIND_UPDATE, steps);
                }
            }
            Configuration::MiddleTierCache | Configuration::WebCache => {
                let mut steps = Vec::with_capacity(8);
                net_hop(&mut steps, site.site_net, svc.net_msg);
                steps.push(Step::Acquire(shared_db));
                steps.push(Step::Busy(svc.db_update));
                steps.push(Step::Release(shared_db));
                engine.spawn_at(upd.at, class::KIND_UPDATE, steps);
            }
        }
    }

    // --- synchronization / invalidation traffic -------------------------
    let has_updates = !updates.is_empty();
    let mut t = svc.sync_interval;
    while t < params.duration {
        match conf {
            Configuration::MiddleTierCache => {
                // data_cache_synch_cost: one "fetch updates" query per cache
                // per interval (§5.2.5), over the shared network.
                if has_updates {
                    for _ in 0..params.nodes {
                        let mut steps = Vec::with_capacity(8);
                        net_hop(&mut steps, site.site_net, svc.net_msg);
                        steps.push(Step::Acquire(shared_db));
                        steps.push(Step::Busy(svc.sync_query));
                        steps.push(Step::Release(shared_db));
                        net_hop(&mut steps, site.site_net, svc.net_msg);
                        engine.spawn_at(t, class::KIND_SYNC, steps);
                    }
                }
            }
            Configuration::WebCache => match params.freshness {
                Freshness::Invalidation => {
                    // poll_cost: the invalidator's per-interval query (§5.2.4).
                    if has_updates {
                        let mut steps = Vec::with_capacity(8);
                        net_hop(&mut steps, site.site_net, svc.net_msg);
                        steps.push(Step::Acquire(shared_db));
                        steps.push(Step::Busy(svc.poll_query));
                        steps.push(Step::Release(shared_db));
                        net_hop(&mut steps, site.site_net, svc.net_msg);
                        engine.spawn_at(t, class::KIND_POLL, steps);
                    }
                }
                Freshness::PeriodicRefresh { pages_per_interval } => {
                    // Time-based refresh regenerates pages through the full
                    // backend path every interval — updates or not.
                    for k in 0..pages_per_interval {
                        let page = PageClass::ALL[k % 3];
                        let node = k % params.nodes;
                        let mut steps = Vec::with_capacity(24);
                        net_hop(&mut steps, site.site_net, svc.net_msg);
                        enter_servers(&mut steps, &site, node, params);
                        db_trip(
                            &mut steps,
                            shared_db,
                            db_service(params, page),
                            Some((site.site_net, svc.net_msg)),
                        );
                        exit_servers(&mut steps, &site, node, params);
                        net_hop(&mut steps, site.site_net, svc.net_msg);
                        engine.spawn_at(t, class::KIND_SYNC, steps);
                    }
                }
            },
            Configuration::ReplicatedDb => {
                // Replication has no periodic sync beyond the per-update
                // fan-out already modelled.
            }
        }
        t += svc.sync_interval;
    }

    engine.run_until(params.duration);
    collect(&engine, params.duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::SEC;
    use crate::params::UpdateRate;

    fn quick(conf: Configuration, rate: UpdateRate) -> RunResult {
        let params = SimParams::paper_baseline()
            .with_duration(40 * SEC)
            .with_update_rate(rate);
        simulate(conf, &params)
    }

    #[test]
    fn conf_i_has_no_hits_and_is_overloaded() {
        let r = quick(Configuration::ReplicatedDb, UpdateRate::NONE);
        assert_eq!(r.row.hit_resp.count, 0, "no cache in Conf I");
        let conf3 = quick(Configuration::WebCache, UpdateRate::NONE);
        assert!(
            r.row.all_resp.mean_ms().unwrap() > 10.0 * conf3.row.all_resp.mean_ms().unwrap(),
            "Conf I must be at least an order of magnitude slower: {:?} vs {:?}",
            r.row.all_resp.mean_ms(),
            conf3.row.all_resp.mean_ms()
        );
    }

    #[test]
    fn conf_iii_close_to_conf_ii_when_no_updates() {
        let ii = quick(Configuration::MiddleTierCache, UpdateRate::NONE);
        let iii = quick(Configuration::WebCache, UpdateRate::NONE);
        let a = ii.row.all_resp.mean_ms().unwrap();
        let b = iii.row.all_resp.mean_ms().unwrap();
        assert!(b < a * 1.25, "III ({b:.0}ms) ≈ or < II ({a:.0}ms)");
    }

    #[test]
    fn update_load_widens_the_gap() {
        let ii = quick(Configuration::MiddleTierCache, UpdateRate::HIGH);
        let iii = quick(Configuration::WebCache, UpdateRate::HIGH);
        let a = ii.row.all_resp.mean_ms().unwrap();
        let b = iii.row.all_resp.mean_ms().unwrap();
        assert!(
            b < a,
            "under heavy updates Conf III ({b:.0}ms) must beat Conf II ({a:.0}ms)"
        );
    }

    #[test]
    fn conf_iii_hits_unaffected_by_updates() {
        let none = quick(Configuration::WebCache, UpdateRate::NONE);
        let high = quick(Configuration::WebCache, UpdateRate::HIGH);
        let h0 = none.row.hit_resp.mean_ms().unwrap();
        let h1 = high.row.hit_resp.mean_ms().unwrap();
        assert!(
            (h1 - h0).abs() < h0 * 0.25,
            "hit time moved too much: {h0:.0} → {h1:.0}"
        );
    }

    #[test]
    fn conf_ii_local_dbms_cache_is_catastrophic() {
        let params = SimParams::paper_baseline()
            .with_duration(40 * SEC)
            .with_conf2_access(crate::params::Conf2CacheAccess::LocalDbms);
        let table3 = simulate(Configuration::MiddleTierCache, &params);
        let table2 = quick(Configuration::MiddleTierCache, UpdateRate::NONE);
        assert!(
            table3.row.all_resp.mean_ms().unwrap()
                > 20.0 * table2.row.all_resp.mean_ms().unwrap(),
            "local-DBMS cache must blow up: {:?} vs {:?}",
            table3.row.all_resp.mean_ms(),
            table2.row.all_resp.mean_ms()
        );
    }

    #[test]
    fn closed_loop_saturates_instead_of_diverging() {
        use crate::params::ClientModel;
        // Conf I is hopelessly overloaded open-loop: its mean response grows
        // with experiment length. Closed-loop with a fixed population, the
        // backlog is bounded by the population, so the mean stabilizes.
        let closed = |secs: u64| {
            let params = SimParams::paper_baseline()
                .with_duration(secs * SEC)
                .with_client_model(ClientModel::Closed {
                    users: 30,
                    think_time: SEC,
                });
            simulate(Configuration::ReplicatedDb, &params)
                .row
                .all_resp
                .mean_ms()
                .unwrap()
        };
        let open = |secs: u64| {
            let params = SimParams::paper_baseline().with_duration(secs * SEC);
            simulate(Configuration::ReplicatedDb, &params)
                .row
                .all_resp
                .mean_ms()
                .unwrap()
        };
        let (c30, c90) = (closed(30), closed(90));
        let (o30, o90) = (open(30), open(90));
        assert!(
            o90 > o30 * 1.8,
            "open loop must diverge with duration: {o30} -> {o90}"
        );
        assert!(
            c90 < c30 * 1.5,
            "closed loop must stabilize: {c30} -> {c90}"
        );
        assert!(c90 < o90, "closed-loop backlog is bounded by the population");
    }

    #[test]
    fn closed_loop_matches_open_when_underloaded() {
        use crate::params::ClientModel;
        // Conf III is far from saturation: a closed population generating
        // roughly the same demand sees hit latencies in the same range.
        let params = SimParams::paper_baseline()
            .with_duration(40 * SEC)
            .with_client_model(ClientModel::Closed {
                users: 30,
                think_time: SEC,
            });
        let closed = simulate(Configuration::WebCache, &params);
        let open = simulate(
            Configuration::WebCache,
            &SimParams::paper_baseline().with_duration(40 * SEC),
        );
        let ch = closed.row.hit_resp.mean_ms().unwrap();
        let oh = open.row.hit_resp.mean_ms().unwrap();
        assert!(
            (ch - oh).abs() < oh * 0.25,
            "hit latency should not depend on the client model when idle: {ch} vs {oh}"
        );
        assert!(closed.completed_requests > 500, "population kept busy");
    }

    #[test]
    fn periodic_refresh_costs_more_than_invalidation() {
        use crate::params::Freshness;
        let base = SimParams::paper_baseline()
            .with_duration(40 * SEC)
            .with_update_rate(UpdateRate::MEDIUM);
        let inval = simulate(Configuration::WebCache, &base);
        let refresh = |pages| {
            simulate(
                Configuration::WebCache,
                &base.clone().with_freshness(Freshness::PeriodicRefresh {
                    pages_per_interval: pages,
                }),
            )
        };
        let light = refresh(5);
        let heavy = refresh(40);
        let e = |r: &RunResult| r.row.all_resp.mean_ms().unwrap();
        assert!(
            e(&light) > e(&inval),
            "even light refresh costs more: {} vs {}",
            e(&light),
            e(&inval)
        );
        assert!(
            e(&heavy) > e(&light) * 1.5,
            "refresh cost grows with refreshed pages: {} vs {}",
            e(&heavy),
            e(&light)
        );
        // The extra load shows up as DB utilization.
        let util = |r: &RunResult| {
            r.stations
                .iter()
                .find(|(n, _, _)| n == "db")
                .map(|(_, u, _)| *u)
                .unwrap()
        };
        assert!(util(&heavy) > util(&inval));
        assert!(util(&heavy) > 0.95, "refresh saturates the DBMS");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(Configuration::WebCache, UpdateRate::MEDIUM);
        let b = quick(Configuration::WebCache, UpdateRate::MEDIUM);
        assert_eq!(a.row.all_resp.sum, b.row.all_resp.sum);
        assert_eq!(a.completed_requests, b.completed_requests);
    }
}

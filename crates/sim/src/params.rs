//! Simulation parameters — a direct transcription of the paper's Table 1
//! plus the service-time knobs of the simulated hardware (the paper's
//! testbed: 200 MHz PCs, Apache, Oracle 8i, shared LAN).

use crate::des::{SimTime, MS, SEC};

/// Update load as the paper writes it: ⟨ins₁, del₁, ins₂, del₂⟩ —
/// insertions/deletions per second into table 1 (small) and table 2 (large).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateRate {
    /// Insertions/s into the small table.
    pub ins1: f64,
    /// Deletions/s from the small table.
    pub del1: f64,
    /// Insertions/s into the large table.
    pub ins2: f64,
    /// Deletions/s from the large table.
    pub del2: f64,
}

impl UpdateRate {
    /// No updates.
    pub const NONE: UpdateRate = UpdateRate {
        ins1: 0.0,
        del1: 0.0,
        ins2: 0.0,
        del2: 0.0,
    };

    /// ⟨5,5,5,5⟩.
    pub const MEDIUM: UpdateRate = UpdateRate {
        ins1: 5.0,
        del1: 5.0,
        ins2: 5.0,
        del2: 5.0,
    };

    /// ⟨12,12,12,12⟩.
    pub const HIGH: UpdateRate = UpdateRate {
        ins1: 12.0,
        del1: 12.0,
        ins2: 12.0,
        del2: 12.0,
    };

    /// Total tuple updates per second.
    pub fn total_per_sec(&self) -> f64 {
        self.ins1 + self.del1 + self.ins2 + self.del2
    }

    /// Row label in the paper’s notation.
    pub fn label(&self) -> String {
        if self.total_per_sec() == 0.0 {
            "No Updates".to_string()
        } else {
            format!(
                "<{},{},{},{}>",
                self.ins1, self.del1, self.ins2, self.del2
            )
        }
    }
}

/// How the cache hit ratio is obtained (paper §5.1.1: "hit ratio is usually
/// a function of the cache size … over-invalidation, in turn, causes the
/// hit ratio to decrease").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HitRatioModel {
    /// The paper's experimental setting: a constant ratio (70% in §5).
    Fixed(f64),
    /// Derived from cache capacity and invalidation churn:
    ///
    /// ```text
    /// coverage = min(1, cache_size / working_set)
    /// churn    = update_rate × inval_per_update × coverage / request_rate
    /// hit      = max_hit × coverage / (1 + churn)
    /// ```
    ///
    /// `inval_per_update` is the invalidation ratio of §5.1.1 — how many
    /// cached pages one tuple update invalidates on average; precise
    /// invalidation (CachePortal Exact) keeps it small, coarse policies
    /// inflate it.
    Derived {
        /// Pages the cache can hold (`cache_size` in Table 1).
        cache_size: usize,
        /// Distinct pages the workload requests.
        working_set: usize,
        /// Hit ratio at full coverage and zero updates.
        max_hit: f64,
        /// Average pages invalidated per tuple update (`inval_rate`).
        inval_per_update: f64,
    },
}

impl HitRatioModel {
    /// Effective hit ratio for the given workload intensities.
    pub fn effective(&self, update_rate_per_sec: f64, request_rate_per_sec: f64) -> f64 {
        match self {
            HitRatioModel::Fixed(h) => h.clamp(0.0, 1.0),
            HitRatioModel::Derived {
                cache_size,
                working_set,
                max_hit,
                inval_per_update,
            } => {
                if *working_set == 0 || request_rate_per_sec <= 0.0 {
                    return 0.0;
                }
                let coverage = (*cache_size as f64 / *working_set as f64).min(1.0);
                let churn =
                    update_rate_per_sec * inval_per_update * coverage / request_rate_per_sec;
                (max_hit * coverage / (1.0 + churn)).clamp(0.0, 1.0)
            }
        }
    }
}

/// Request generation regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientModel {
    /// Open loop: Poisson arrivals at `num_req_per_sec` regardless of how
    /// the site is doing — overload diverges (queues grow for the whole
    /// experiment). This matches the paper's request generator.
    Open,
    /// Closed loop: a fixed population of users, each issuing its next
    /// request `think_time` (exponential mean) after the previous response.
    /// Overload saturates instead of diverging — response times stabilize
    /// near `users × bottleneck service time`.
    Closed {
        /// Concurrent simulated users.
        users: usize,
        /// Mean think time between response and next request (µs).
        think_time: SimTime,
    },
}

/// How Configuration III's front cache stays fresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// CachePortal invalidation: the invalidator's polling work is one
    /// cheap query per sync interval (§5.2.4), plus eject messages.
    Invalidation,
    /// Oracle9i-style time-based refresh (the §1 baseline the paper argues
    /// against): every sync interval, `pages_per_interval` cached pages are
    /// regenerated through the full backend path whether or not anything
    /// changed — "a significant amount of unnecessary computation overhead
    /// at the web server, the application server, and the databases".
    PeriodicRefresh {
        /// Pages re-generated per sync interval.
        pages_per_interval: usize,
    },
}

/// How Configuration II's middle-tier data cache is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conf2CacheAccess {
    /// Table 2's assumption: data is in memory, access is (nearly) free.
    Negligible,
    /// Table 3's implementation: the cache is a local DBMS; every access
    /// pays a connection cost and contends for the node-local cache server.
    LocalDbms,
}

/// Service-time model of the simulated deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceTimes {
    /// DBMS service time for a light page's query (small-table select).
    pub db_light: SimTime,
    /// Medium page (large-table select).
    pub db_medium: SimTime,
    /// Heavy page (select-join over both tables).
    pub db_heavy: SimTime,
    /// Applying one update tuple at a DBMS.
    pub db_update: SimTime,
    /// Parallel query workers at the shared DBMS (Conf II/III).
    pub db_workers_shared: usize,
    /// Workers at each Conf I replica DBMS (co-located with the web server).
    pub db_workers_replica: usize,
    /// Web-server work before/after the application server.
    pub ws_pre: SimTime,
    /// Web-server work after the application server.
    pub ws_post: SimTime,
    /// Web-server workers per node.
    pub ws_workers: usize,
    /// Application-server work before/after the DB call. The AS worker is
    /// held across the DB call — the §5.3.1 starvation mechanism.
    pub as_pre: SimTime,
    /// Application-server work after the DB call.
    pub as_post: SimTime,
    /// Application-server workers per node.
    pub as_workers: usize,
    /// Per-message time on the site-internal shared network.
    pub net_msg: SimTime,
    /// Parallel channels on the site network.
    pub net_workers: usize,
    /// Per-message time on the external (client-side) network.
    pub ext_net_msg: SimTime,
    /// Parallel channels on the external network.
    pub ext_net_workers: usize,
    /// Web-cache lookup/serve time (Conf III front cache).
    pub cache_lookup: SimTime,
    /// Front-cache workers.
    pub cache_workers: usize,
    /// Connection + access cost at the local-DBMS data cache (Table 3).
    pub dcache_conn: SimTime,
    /// Access cost at an in-memory data cache (Table 2; "negligible").
    pub dcache_mem: SimTime,
    /// Data-cache servers per node.
    pub dcache_workers: usize,
    /// Cache/replica synchronization interval.
    pub sync_interval: SimTime,
    /// DBMS time for one synchronization query ("fetch the recent updates").
    pub sync_query: SimTime,
    /// DBMS time for the invalidator's per-interval polling work (Conf III;
    /// the paper assumes the invalidator keeps its own data cache, so this
    /// is one cheap query per interval).
    pub poll_query: SimTime,
}

impl Default for ServiceTimes {
    fn default() -> Self {
        ServiceTimes {
            db_light: 80 * MS,
            db_medium: 250 * MS,
            db_heavy: 700 * MS,
            db_update: 16 * MS,
            db_workers_shared: 4,
            db_workers_replica: 1,
            ws_pre: 4 * MS,
            ws_post: 3 * MS,
            ws_workers: 8,
            as_pre: 8 * MS,
            as_post: 5 * MS,
            as_workers: 8,
            net_msg: 4 * MS,
            net_workers: 1,
            ext_net_msg: 50 * MS,
            ext_net_workers: 16,
            cache_lookup: 3 * MS,
            cache_workers: 4,
            dcache_conn: 220 * MS,
            dcache_mem: MS,
            dcache_workers: 1,
            sync_interval: SEC,
            sync_query: 25 * MS,
            poll_query: 20 * MS,
        }
    }
}

/// Full parameter set for one simulation run (Table 1 + environment).
#[derive(Debug, Clone, PartialEq)]
pub struct SimParams {
    /// Workload RNG seed (runs are deterministic given it).
    pub seed: u64,
    /// Simulated experiment length.
    pub duration: SimTime,
    /// HTTP requests per second, split evenly light/medium/heavy
    /// (the paper's 30 = 10+10+10).
    pub num_req_per_sec: f64,
    /// Cache hit ratio (web cache in Conf III, data cache in Conf II).
    /// The paper holds this at 0.70.
    pub hit_ratio: f64,
    /// When set, overrides `hit_ratio` with the §5.1.1 functional model
    /// (cache size / working set / invalidation churn).
    pub hit_ratio_model: Option<HitRatioModel>,
    /// Update load.
    pub update_rate: UpdateRate,
    /// Web/application server nodes behind the load balancer.
    pub nodes: usize,
    /// DB queries per page request (1 in the paper's application).
    pub query_per_request: u32,
    /// Conf II cache access model.
    pub conf2_access: Conf2CacheAccess,
    /// Open-loop (paper) or closed-loop request generation.
    pub client_model: ClientModel,
    /// Conf III freshness mechanism (invalidation vs. periodic refresh).
    pub freshness: Freshness,
    /// Service-time model of the simulated hardware.
    pub svc: ServiceTimes,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            seed: 0xCAC4E,
            duration: 120 * SEC,
            num_req_per_sec: 30.0,
            hit_ratio: 0.70,
            hit_ratio_model: None,
            update_rate: UpdateRate::NONE,
            nodes: 4,
            query_per_request: 1,
            conf2_access: Conf2CacheAccess::Negligible,
            client_model: ClientModel::Open,
            freshness: Freshness::Invalidation,
            svc: ServiceTimes::default(),
        }
    }
}

impl SimParams {
    /// The paper's §5.2 experiment setup.
    pub fn paper_baseline() -> Self {
        SimParams::default()
    }

    /// Set the update load.
    pub fn with_update_rate(mut self, rate: UpdateRate) -> Self {
        self.update_rate = rate;
        self
    }

    /// Set the fixed hit ratio.
    pub fn with_hit_ratio(mut self, hit_ratio: f64) -> Self {
        self.hit_ratio = hit_ratio;
        self
    }

    /// Derive the hit ratio from the §5.1.1 functional model.
    pub fn with_hit_ratio_model(mut self, model: HitRatioModel) -> Self {
        self.hit_ratio_model = Some(model);
        self
    }

    /// Switch to closed-loop clients.
    pub fn with_client_model(mut self, model: ClientModel) -> Self {
        self.client_model = model;
        self
    }

    /// Set Configuration III's freshness mechanism.
    pub fn with_freshness(mut self, freshness: Freshness) -> Self {
        self.freshness = freshness;
        self
    }

    /// The hit ratio the workload generator will use: the functional model
    /// when configured, otherwise the fixed ratio.
    pub fn effective_hit_ratio(&self) -> f64 {
        match &self.hit_ratio_model {
            Some(m) => m.effective(self.update_rate.total_per_sec(), self.num_req_per_sec),
            None => self.hit_ratio,
        }
    }

    /// Set Configuration II’s cache access model.
    pub fn with_conf2_access(mut self, access: Conf2CacheAccess) -> Self {
        self.conf2_access = access;
        self
    }

    /// Set the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the simulated experiment length.
    pub fn with_duration(mut self, duration: SimTime) -> Self {
        self.duration = duration;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_rate_labels() {
        assert_eq!(UpdateRate::NONE.label(), "No Updates");
        assert_eq!(UpdateRate::MEDIUM.label(), "<5,5,5,5>");
        assert_eq!(UpdateRate::HIGH.total_per_sec(), 48.0);
    }

    #[test]
    fn paper_baseline_matches_setup() {
        let p = SimParams::paper_baseline();
        assert_eq!(p.num_req_per_sec, 30.0);
        assert_eq!(p.hit_ratio, 0.70);
        assert_eq!(p.effective_hit_ratio(), 0.70);
        assert_eq!(p.nodes, 4);
    }

    #[test]
    fn derived_hit_ratio_shape() {
        let model = |cache_size| HitRatioModel::Derived {
            cache_size,
            working_set: 1000,
            max_hit: 0.9,
            inval_per_update: 0.5,
        };
        // Grows with cache size up to full coverage.
        let h0 = model(100).effective(0.0, 30.0);
        let h1 = model(500).effective(0.0, 30.0);
        let h2 = model(1000).effective(0.0, 30.0);
        let h3 = model(5000).effective(0.0, 30.0);
        assert!(h0 < h1 && h1 < h2, "{h0} {h1} {h2}");
        assert_eq!(h2, h3, "coverage saturates at the working set");
        assert!((h2 - 0.9).abs() < 1e-12);
        // Decreases with update rate (over-invalidation churn).
        let quiet = model(1000).effective(0.0, 30.0);
        let busy = model(1000).effective(48.0, 30.0);
        assert!(busy < quiet, "{busy} < {quiet}");
        // Degenerate inputs are safe.
        assert_eq!(
            HitRatioModel::Derived {
                cache_size: 10,
                working_set: 0,
                max_hit: 0.9,
                inval_per_update: 0.1
            }
            .effective(1.0, 30.0),
            0.0
        );
        assert_eq!(HitRatioModel::Fixed(1.7).effective(0.0, 1.0), 1.0);
    }
}

//! A small deterministic discrete-event simulation engine.
//!
//! The world is a set of **stations** (FIFO multi-server resources: CPUs,
//! worker pools, network links, database servers) and **jobs** (requests,
//! updates, synchronization traffic). A job is a straight-line program of
//! [`Step`]s; `Acquire` blocks in the station's FIFO queue when all workers
//! are busy, and a held worker is released only by an explicit `Release` —
//! which is exactly how a web-server thread holding memory and a database
//! connection while blocked on the DBMS starves later requests (the paper's
//! §5.3.1 observation).
//!
//! Determinism: ties in the event queue break by insertion sequence, and all
//! randomness lives in the workload generators (seeded).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulated time in microseconds.
pub type SimTime = u64;

/// One microsecond per unit; helpers for readability.
pub const MS: SimTime = 1_000;
/// One second in simulation time units.
pub const SEC: SimTime = 1_000_000;

/// Index of a station in the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StationId(pub usize);

/// Index of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(pub usize);

/// One instruction of a job's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Wait for (then hold) one worker of the station.
    Acquire(StationId),
    /// Occupy simulated time. The job must currently hold whatever resources
    /// the modeller intends (the engine does not check — a `Busy` after an
    /// `Acquire` models service, one without models pure latency).
    Busy(SimTime),
    /// Release one previously acquired worker of the station.
    Release(StationId),
    /// Record the current time under a mark index (metrics use marks to
    /// attribute segments, e.g. time spent in the DBMS).
    Mark(u8),
}

/// A FIFO multi-server resource.
#[derive(Debug)]
pub struct Station {
    /// Station name (diagnostics).
    pub name: String,
    workers: usize,
    busy: usize,
    queue: VecDeque<JobId>,
    /// Total worker-microseconds consumed (utilization accounting).
    pub busy_time: u128,
    /// Jobs that ever acquired this station.
    pub acquisitions: u64,
    /// Peak queue length observed.
    pub peak_queue: usize,
}

impl Station {
    fn new(name: &str, workers: usize) -> Self {
        assert!(workers > 0, "station {name} needs at least one worker");
        Station {
            name: name.to_string(),
            workers,
            busy: 0,
            queue: VecDeque::new(),
            busy_time: 0,
            acquisitions: 0,
            peak_queue: 0,
        }
    }

    /// Current queue length (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Utilization over `elapsed` (0..=1 per worker).
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_time as f64 / (elapsed as f64 * self.workers as f64)
        }
    }
}

/// Job lifecycle record handed to the completion callback.
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// Job id.
    pub id: JobId,
    /// Modeller-assigned class tag (opaque to the engine).
    pub class: u32,
    /// Spawn time.
    pub created: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// Mark timestamps (index → time); unset marks are `None`.
    pub marks: [Option<SimTime>; 8],
}

impl CompletedJob {
    /// Finished minus created.
    pub fn response_time(&self) -> SimTime {
        self.finished - self.created
    }

    /// Duration between two marks, if both were recorded.
    pub fn mark_span(&self, start: u8, end: u8) -> Option<SimTime> {
        match (self.marks[start as usize], self.marks[end as usize]) {
            (Some(a), Some(b)) if b >= a => Some(b - a),
            _ => None,
        }
    }
}

/// A follow-up job spawned when its predecessor completes — the building
/// block of closed-loop (think-time) client models: `delay` after the
/// predecessor finishes, the successor starts.
#[derive(Debug)]
pub struct ChainedJob {
    /// Think time between the predecessor's completion and this job's start.
    pub delay: SimTime,
    /// Class tag of the successor.
    pub class: u32,
    /// Program of the successor.
    pub steps: Vec<Step>,
    /// Its own successor, if any.
    pub next: Option<Box<ChainedJob>>,
}

#[derive(Debug)]
struct Job {
    class: u32,
    steps: Vec<Step>,
    pc: usize,
    created: SimTime,
    marks: [Option<SimTime>; 8],
    /// Time the job last consumed busy time at a station (for utilization
    /// attribution of the *last* Acquire; see `attribute_busy`).
    holding: Vec<StationId>,
    /// Successor spawned on completion (closed-loop chains).
    next: Option<Box<ChainedJob>>,
}

/// The simulation engine.
pub struct Engine {
    stations: Vec<Station>,
    jobs: Vec<Job>,
    /// (time, seq) → job to advance.
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    seq: u64,
    now: SimTime,
    completed: Vec<CompletedJob>,
}

impl Engine {
    /// Create an empty engine.
    pub fn new() -> Self {
        Engine {
            stations: Vec::new(),
            jobs: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            completed: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Register a station with `workers` parallel servers.
    pub fn add_station(&mut self, name: &str, workers: usize) -> StationId {
        self.stations.push(Station::new(name, workers));
        StationId(self.stations.len() - 1)
    }

    /// Station by id.
    pub fn station(&self, id: StationId) -> &Station {
        &self.stations[id.0]
    }

    /// All stations.
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// Schedule a job to start at `at` (absolute time, ≥ now).
    pub fn spawn_at(&mut self, at: SimTime, class: u32, steps: Vec<Step>) -> JobId {
        self.spawn_chain_at(at, class, steps, None)
    }

    /// Schedule a job with a completion-triggered successor chain (used by
    /// closed-loop clients: each user's next request starts `delay` after
    /// the previous response arrived).
    pub fn spawn_chain_at(
        &mut self,
        at: SimTime,
        class: u32,
        steps: Vec<Step>,
        next: Option<Box<ChainedJob>>,
    ) -> JobId {
        let id = JobId(self.jobs.len());
        self.jobs.push(Job {
            class,
            steps,
            pc: 0,
            created: at,
            marks: [None; 8],
            holding: Vec::with_capacity(2),
            next,
        });
        self.schedule(at, id.0);
        id
    }

    fn schedule(&mut self, at: SimTime, job: usize) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, job)));
    }

    /// Run until the event queue is empty or `deadline` passes. Jobs still
    /// in flight at the deadline are abandoned (not recorded as completed).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse((t, _, job))) = self.heap.pop() {
            if t > deadline {
                // Keep the event for a potential continuation run.
                self.schedule(t, job);
                break;
            }
            self.now = t;
            self.advance(job);
        }
    }

    /// Advance one job as far as it can go at the current instant.
    fn advance(&mut self, job_idx: usize) {
        loop {
            let pc = self.jobs[job_idx].pc;
            if pc >= self.jobs[job_idx].steps.len() {
                let job = &self.jobs[job_idx];
                debug_assert!(
                    job.holding.is_empty(),
                    "job finished while holding {:?}",
                    job.holding
                );
                self.completed.push(CompletedJob {
                    id: JobId(job_idx),
                    class: job.class,
                    created: job.created,
                    finished: self.now,
                    marks: job.marks,
                });
                // Closed-loop chains: the successor starts after think time.
                if let Some(chain) = self.jobs[job_idx].next.take() {
                    let ChainedJob {
                        delay,
                        class,
                        steps,
                        next,
                    } = *chain;
                    self.spawn_chain_at(self.now + delay, class, steps, next);
                }
                return;
            }
            match self.jobs[job_idx].steps[pc] {
                Step::Acquire(sid) => {
                    let st = &mut self.stations[sid.0];
                    if st.busy < st.workers {
                        st.busy += 1;
                        st.acquisitions += 1;
                        self.jobs[job_idx].holding.push(sid);
                        self.jobs[job_idx].pc += 1;
                        // fall through: keep advancing at the same instant
                    } else {
                        st.queue.push_back(JobId(job_idx));
                        st.peak_queue = st.peak_queue.max(st.queue.len());
                        return; // resumed by a Release
                    }
                }
                Step::Busy(d) => {
                    self.jobs[job_idx].pc += 1;
                    // Attribute busy time to every held station (a thread
                    // blocked in the DB still occupies its WS/AS worker).
                    for sid in &self.jobs[job_idx].holding {
                        self.stations[sid.0].busy_time += d as u128;
                    }
                    if d == 0 {
                        continue;
                    }
                    self.schedule(self.now + d, job_idx);
                    return;
                }
                Step::Release(sid) => {
                    let holding = &mut self.jobs[job_idx].holding;
                    let pos = holding
                        .iter()
                        .rposition(|h| *h == sid)
                        .unwrap_or_else(|| {
                            panic!(
                                "job releases {} it does not hold",
                                self.stations[sid.0].name
                            )
                        });
                    holding.remove(pos);
                    self.jobs[job_idx].pc += 1;
                    let st = &mut self.stations[sid.0];
                    if let Some(JobId(next)) = st.queue.pop_front() {
                        // Hand the worker directly to the waiter.
                        st.acquisitions += 1;
                        self.jobs[next].holding.push(sid);
                        self.jobs[next].pc += 1; // past its Acquire
                        self.schedule(self.now, next);
                    } else {
                        st.busy -= 1;
                    }
                }
                Step::Mark(m) => {
                    self.jobs[job_idx].marks[m as usize] = Some(self.now);
                    self.jobs[job_idx].pc += 1;
                }
            }
        }
    }

    /// Completed jobs, in completion order.
    pub fn completed(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// Jobs spawned but not completed (queue pressure diagnostics).
    pub fn in_flight(&self) -> usize {
        self.jobs.len() - self.completed.len()
    }

    /// `(class, created)` of every job still in flight — metrics treat these
    /// as right-censored observations (the user was still waiting when the
    /// experiment ended).
    pub fn in_flight_jobs(&self) -> Vec<(u32, SimTime)> {
        let done: std::collections::HashSet<usize> =
            self.completed.iter().map(|c| c.id.0).collect();
        self.jobs
            .iter()
            .enumerate()
            .filter(|(i, _)| !done.contains(i))
            .map(|(_, j)| (j.class, j.created))
            .collect()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_runs_to_completion() {
        let mut e = Engine::new();
        let s = e.add_station("cpu", 1);
        e.spawn_at(
            10,
            0,
            vec![
                Step::Acquire(s),
                Step::Busy(100),
                Step::Release(s),
            ],
        );
        e.run_until(1_000);
        assert_eq!(e.completed().len(), 1);
        let j = &e.completed()[0];
        assert_eq!(j.created, 10);
        assert_eq!(j.finished, 110);
        assert_eq!(j.response_time(), 100);
    }

    #[test]
    fn fifo_queueing_on_single_worker() {
        let mut e = Engine::new();
        let s = e.add_station("cpu", 1);
        for i in 0..3 {
            e.spawn_at(
                i, // nearly simultaneous arrivals
                i as u32,
                vec![Step::Acquire(s), Step::Busy(100), Step::Release(s)],
            );
        }
        e.run_until(10_000);
        let done = e.completed();
        assert_eq!(done.len(), 3);
        // Service is serialized: completions at 100, 200, 300.
        assert_eq!(done[0].finished, 100);
        assert_eq!(done[1].finished, 200);
        assert_eq!(done[2].finished, 300);
        assert_eq!(done[0].class, 0);
        assert_eq!(done[1].class, 1, "FIFO order preserved");
    }

    #[test]
    fn multi_worker_runs_in_parallel() {
        let mut e = Engine::new();
        let s = e.add_station("cpu", 2);
        for i in 0..2 {
            e.spawn_at(0, i, vec![Step::Acquire(s), Step::Busy(100), Step::Release(s)]);
        }
        e.run_until(10_000);
        assert!(e.completed().iter().all(|j| j.finished == 100));
    }

    #[test]
    fn nested_hold_starves_outer_station() {
        // Two-station pipeline: outer has 1 worker held across the inner
        // (slow) service — the second job's response includes the full
        // first-job inner time even though inner has 2 workers.
        let mut e = Engine::new();
        let outer = e.add_station("as", 1);
        let inner = e.add_station("db", 2);
        let program = |_: u32| {
            vec![
                Step::Acquire(outer),
                Step::Busy(10),
                Step::Acquire(inner),
                Step::Busy(1_000),
                Step::Release(inner),
                Step::Release(outer),
            ]
        };
        e.spawn_at(0, 0, program(0));
        e.spawn_at(0, 1, program(1));
        e.run_until(100_000);
        let done = e.completed();
        assert_eq!(done[0].finished, 1_010);
        assert_eq!(done[1].finished, 2_020, "starved by the held outer worker");
    }

    #[test]
    fn marks_record_segments() {
        let mut e = Engine::new();
        let db = e.add_station("db", 1);
        e.spawn_at(
            0,
            0,
            vec![
                Step::Busy(50),
                Step::Mark(0),
                Step::Acquire(db),
                Step::Busy(200),
                Step::Release(db),
                Step::Mark(1),
                Step::Busy(25),
            ],
        );
        e.run_until(10_000);
        let j = &e.completed()[0];
        assert_eq!(j.mark_span(0, 1), Some(200));
        assert_eq!(j.response_time(), 275);
    }

    #[test]
    fn deadline_abandons_in_flight_jobs() {
        let mut e = Engine::new();
        let s = e.add_station("cpu", 1);
        e.spawn_at(0, 0, vec![Step::Acquire(s), Step::Busy(1_000), Step::Release(s)]);
        e.spawn_at(0, 1, vec![Step::Acquire(s), Step::Busy(1_000), Step::Release(s)]);
        e.run_until(1_500);
        assert_eq!(e.completed().len(), 1);
        assert_eq!(e.in_flight(), 1);
    }

    #[test]
    fn utilization_accounting() {
        let mut e = Engine::new();
        let s = e.add_station("cpu", 1);
        e.spawn_at(0, 0, vec![Step::Acquire(s), Step::Busy(400), Step::Release(s)]);
        e.run_until(1_000);
        assert!((e.station(s).utilization(1_000) - 0.4).abs() < 1e-9);
        assert_eq!(e.station(s).acquisitions, 1);
    }

    #[test]
    fn release_hands_worker_to_waiter_at_same_instant() {
        let mut e = Engine::new();
        let s = e.add_station("cpu", 1);
        e.spawn_at(0, 0, vec![Step::Acquire(s), Step::Busy(10), Step::Release(s)]);
        e.spawn_at(1, 1, vec![Step::Acquire(s), Step::Busy(10), Step::Release(s)]);
        e.run_until(1_000);
        assert_eq!(e.completed()[1].finished, 20, "no gap between handoffs");
    }
}

#![warn(missing_docs)]

//! # cacheportal-sim
//!
//! Deterministic discrete-event simulation of the paper's three deployment
//! configurations (§5): web/app-server worker pools whose threads are held
//! across database calls (the resource-starvation mechanism of §5.3.1), a
//! shared site network contended by requests, updates and synchronization
//! traffic, replica/shared DBMS stations, and the three cache placements.
//!
//! The experiment harness in `cacheportal-bench` drives [`configs::simulate`]
//! across the paper's parameter grid to regenerate Tables 2 and 3 and the
//! parameter sweeps.

pub mod configs;
pub mod des;
pub mod metrics;
pub mod params;
pub mod workload;

pub use configs::{simulate, Configuration};
pub use des::{Engine, SimTime, Step, MS, SEC};
pub use metrics::{collect, Agg, ConfigRow, Percentiles, RunResult};
pub use params::{ClientModel, Conf2CacheAccess, Freshness, HitRatioModel, ServiceTimes, SimParams, UpdateRate};
pub use workload::PageClass;

//! Workload generation: Poisson request/update arrival streams with seeded,
//! reproducible randomness (the paper's request and update generators,
//! §5.2.2–§5.2.3).

use crate::des::{SimTime, SEC};
use rand::rngs::StdRng;
use rand::Rng;

/// Page classes, in the paper's terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageClass {
    /// Select on the small table.
    Light,
    /// Select on the large table.
    Medium,
    /// Select-join over both tables.
    Heavy,
}

impl PageClass {
    /// All three classes, in paper order.
    pub const ALL: [PageClass; 3] = [PageClass::Light, PageClass::Medium, PageClass::Heavy];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            PageClass::Light => "light",
            PageClass::Medium => "medium",
            PageClass::Heavy => "heavy",
        }
    }
}

/// One generated page request.
#[derive(Debug, Clone, Copy)]
pub struct RequestArrival {
    /// Arrival time.
    pub at: SimTime,
    /// Page class.
    pub class: PageClass,
    /// Pre-drawn cache outcome (the paper models a fixed hit ratio).
    pub cache_hit: bool,
}

/// One generated update tuple.
#[derive(Debug, Clone, Copy)]
pub struct UpdateArrival {
    /// Arrival time.
    pub at: SimTime,
    /// Which table (0 = small, 1 = large).
    pub table: usize,
    /// Insert (true) or delete (false).
    pub is_insert: bool,
}

/// Exponential interarrival sample for rate `per_sec` (Poisson process).
fn exp_interarrival(rng: &mut StdRng, per_sec: f64) -> SimTime {
    debug_assert!(per_sec > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let secs = -u.ln() / per_sec;
    (secs * SEC as f64) as SimTime
}

/// Generate a Poisson stream of arrival instants over `[0, duration)`.
fn poisson_stream(rng: &mut StdRng, per_sec: f64, duration: SimTime) -> Vec<SimTime> {
    let mut out = Vec::new();
    if per_sec <= 0.0 {
        return out;
    }
    let mut t = exp_interarrival(rng, per_sec);
    while t < duration {
        out.push(t);
        t += exp_interarrival(rng, per_sec);
    }
    out
}

/// Generate the request stream: one independent Poisson stream per page
/// class at `num_req_per_sec / 3`, with pre-drawn hit/miss outcomes.
pub fn generate_requests(
    rng: &mut StdRng,
    num_req_per_sec: f64,
    hit_ratio: f64,
    duration: SimTime,
) -> Vec<RequestArrival> {
    let per_class = num_req_per_sec / PageClass::ALL.len() as f64;
    let mut all = Vec::new();
    for class in PageClass::ALL {
        for at in poisson_stream(rng, per_class, duration) {
            let cache_hit = rng.gen_range(0.0..1.0) < hit_ratio;
            all.push(RequestArrival {
                at,
                class,
                cache_hit,
            });
        }
    }
    all.sort_by_key(|r| r.at);
    all
}

/// Generate the update stream for the paper's ⟨ins₁,del₁,ins₂,del₂⟩ spec.
pub fn generate_updates(
    rng: &mut StdRng,
    rate: &crate::params::UpdateRate,
    duration: SimTime,
) -> Vec<UpdateArrival> {
    let mut all = Vec::new();
    let streams = [
        (rate.ins1, 0usize, true),
        (rate.del1, 0, false),
        (rate.ins2, 1, true),
        (rate.del2, 1, false),
    ];
    for (per_sec, table, is_insert) in streams {
        if per_sec <= 0.0 {
            continue;
        }
        for at in poisson_stream(rng, per_sec, duration) {
            all.push(UpdateArrival {
                at,
                table,
                is_insert,
            });
        }
    }
    all.sort_by_key(|u| u.at);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::UpdateRate;
    use rand::SeedableRng;

    #[test]
    fn request_stream_has_roughly_right_rate_and_mix() {
        let mut rng = StdRng::seed_from_u64(7);
        let reqs = generate_requests(&mut rng, 30.0, 0.7, 100 * SEC);
        let n = reqs.len() as f64;
        assert!((2400.0..3600.0).contains(&n), "expected ≈3000, got {n}");
        for class in PageClass::ALL {
            let share = reqs.iter().filter(|r| r.class == class).count() as f64 / n;
            assert!((share - 1.0 / 3.0).abs() < 0.05, "{}: {share}", class.label());
        }
        let hits = reqs.iter().filter(|r| r.cache_hit).count() as f64 / n;
        assert!((hits - 0.7).abs() < 0.05, "hit share {hits}");
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
    }

    #[test]
    fn update_stream_respects_spec() {
        let mut rng = StdRng::seed_from_u64(9);
        let ups = generate_updates(&mut rng, &UpdateRate::MEDIUM, 100 * SEC);
        let n = ups.len() as f64; // expect ≈ 20/s × 100 s
        assert!((1600.0..2400.0).contains(&n), "expected ≈2000, got {n}");
        let t0 = ups.iter().filter(|u| u.table == 0).count();
        let t1 = ups.iter().filter(|u| u.table == 1).count();
        assert!((t0 as f64 / t1 as f64 - 1.0).abs() < 0.2);
        assert!(generate_updates(&mut rng, &UpdateRate::NONE, 100 * SEC).is_empty());
    }

    #[test]
    fn same_seed_same_stream() {
        let a = generate_requests(&mut StdRng::seed_from_u64(42), 30.0, 0.7, 10 * SEC);
        let b = generate_requests(&mut StdRng::seed_from_u64(42), 30.0, 0.7, 10 * SEC);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at == y.at && x.class == y.class && x.cache_hit == y.cache_hit));
    }
}

//! Response-time metrics in the shape of the paper's Tables 2 and 3.

use crate::des::{Engine, SimTime, MS};
use crate::workload::PageClass;

/// Job-class encoding shared by configs and metrics.
pub mod class {
    use crate::workload::PageClass;

    /// Page-request jobs.
    pub const KIND_REQUEST: u32 = 0;
    /// Update-tuple jobs.
    pub const KIND_UPDATE: u32 = 1 << 4;
    /// Cache-synchronization jobs (Conf II).
    pub const KIND_SYNC: u32 = 2 << 4;
    /// Invalidator polling jobs (Conf III).
    pub const KIND_POLL: u32 = 3 << 4;

    /// Encode a page request class.
    pub fn request(page: PageClass, hit: bool) -> u32 {
        let p = match page {
            PageClass::Light => 0,
            PageClass::Medium => 1,
            PageClass::Heavy => 2,
        };
        KIND_REQUEST | (p << 1) | u32::from(hit)
    }

    /// True for page-request jobs.
    pub fn is_request(c: u32) -> bool {
        c & !0xF == KIND_REQUEST
    }

    /// True when the pre-drawn outcome was a cache hit.
    pub fn is_hit(c: u32) -> bool {
        c & 1 == 1
    }

    /// Decode the page class.
    pub fn page(c: u32) -> PageClass {
        match (c >> 1) & 0b11 {
            0 => PageClass::Light,
            1 => PageClass::Medium,
            _ => PageClass::Heavy,
        }
    }
}

/// Mark indices used by all configurations.
pub const MARK_DB_START: u8 = 0;
/// Time the DB round trip finished.
pub const MARK_DB_END: u8 = 1;

/// Aggregated response times for one cell group.
#[derive(Debug, Default, Clone, Copy)]
pub struct Agg {
    /// Observations.
    pub count: u64,
    /// Sum of response times (Âµs).
    pub sum: u128,
}

impl Agg {
    /// Record one observation.
    pub fn add(&mut self, v: SimTime) {
        self.count += 1;
        self.sum += v as u128;
    }

    /// Mean in milliseconds (`None` when empty — the paper prints `N/A`).
    pub fn mean_ms(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64 / MS as f64)
        }
    }
}

/// One configuration's row group, matching the paper's table cells:
/// miss-DB, miss-response, hit-response, expected response.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConfigRow {
    /// DB segment of misses.
    pub miss_db: Agg,
    /// Full response time of misses.
    pub miss_resp: Agg,
    /// Response time of hits.
    pub hit_resp: Agg,
    /// Response time over all requests (the "expected" column).
    pub all_resp: Agg,
}

impl ConfigRow {
    /// Format one cell: average ms or `N/A`.
    pub fn fmt_cell(v: Option<f64>) -> String {
        match v {
            Some(ms) => format!("{ms:.0}"),
            None => "N/A".to_string(),
        }
    }
}

/// Latency percentiles over all requests (ms): p50 / p95 / p99.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Compute from an unsorted sample set (empty → all zeros).
    pub fn from_samples(mut samples: Vec<SimTime>) -> Percentiles {
        if samples.is_empty() {
            return Percentiles {
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        samples.sort_unstable();
        let pick = |p: f64| {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx] as f64 / MS as f64
        };
        Percentiles {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
        }
    }
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The paper-shaped cell group.
    pub row: ConfigRow,
    /// Per (page class, hit) aggregates.
    pub per_class: Vec<(PageClass, bool, Agg)>,
    /// Requests completed within the horizon.
    pub completed_requests: u64,
    /// Requests still queued at the horizon (right-censored; their elapsed
    /// wait is included in the averages).
    pub censored_requests: u64,
    /// Station name → (utilization, peak queue).
    pub stations: Vec<(String, f64, usize)>,
    /// Response-time percentiles over all requests (censored included).
    pub percentiles: Percentiles,
}

/// Collect metrics from a finished engine.
pub fn collect(engine: &Engine, horizon: SimTime) -> RunResult {
    let mut row = ConfigRow::default();
    let mut per: Vec<(PageClass, bool, Agg)> = Vec::new();
    for pc in PageClass::ALL {
        per.push((pc, false, Agg::default()));
        per.push((pc, true, Agg::default()));
    }
    let mut add_per = |job_class: u32, v: SimTime| {
        let pc = class::page(job_class);
        let hit = class::is_hit(job_class);
        for (p, h, agg) in per.iter_mut() {
            if *p == pc && *h == hit {
                agg.add(v);
            }
        }
    };

    let mut samples: Vec<SimTime> = Vec::new();
    let mut completed_requests = 0;
    for job in engine.completed() {
        if !class::is_request(job.class) {
            continue;
        }
        completed_requests += 1;
        let resp = job.response_time();
        samples.push(resp);
        row.all_resp.add(resp);
        add_per(job.class, resp);
        if class::is_hit(job.class) {
            row.hit_resp.add(resp);
        } else {
            row.miss_resp.add(resp);
            if let Some(db) = job.mark_span(MARK_DB_START, MARK_DB_END) {
                row.miss_db.add(db);
            }
        }
    }

    // Right-censored jobs: the user was still waiting at the horizon.
    let mut censored_requests = 0;
    for (job_class, created) in engine.in_flight_jobs() {
        if !class::is_request(job_class) || created >= horizon {
            continue;
        }
        censored_requests += 1;
        let resp = horizon - created;
        samples.push(resp);
        row.all_resp.add(resp);
        add_per(job_class, resp);
        if class::is_hit(job_class) {
            row.hit_resp.add(resp);
        } else {
            row.miss_resp.add(resp);
        }
    }

    let stations = engine
        .stations()
        .iter()
        .map(|s| (s.name.clone(), s.utilization(horizon), s.peak_queue))
        .collect();

    RunResult {
        row,
        per_class: per,
        completed_requests,
        censored_requests,
        stations,
        percentiles: Percentiles::from_samples(samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::Step;

    #[test]
    fn class_encoding_round_trips() {
        for pc in PageClass::ALL {
            for hit in [false, true] {
                let c = class::request(pc, hit);
                assert!(class::is_request(c));
                assert_eq!(class::page(c), pc);
                assert_eq!(class::is_hit(c), hit);
            }
        }
        assert!(!class::is_request(class::KIND_UPDATE));
        assert!(!class::is_request(class::KIND_SYNC));
    }

    #[test]
    fn agg_mean() {
        let mut a = Agg::default();
        assert_eq!(a.mean_ms(), None);
        a.add(10 * MS);
        a.add(30 * MS);
        assert_eq!(a.mean_ms(), Some(20.0));
    }

    #[test]
    fn collect_splits_hits_and_misses() {
        let mut e = Engine::new();
        let db = e.add_station("db", 1);
        // A miss with a DB segment.
        e.spawn_at(
            0,
            class::request(PageClass::Light, false),
            vec![
                Step::Busy(5 * MS),
                Step::Mark(MARK_DB_START),
                Step::Acquire(db),
                Step::Busy(100 * MS),
                Step::Release(db),
                Step::Mark(MARK_DB_END),
            ],
        );
        // A hit.
        e.spawn_at(
            0,
            class::request(PageClass::Light, true),
            vec![Step::Busy(10 * MS)],
        );
        // An update job must not count as a request.
        e.spawn_at(0, class::KIND_UPDATE, vec![Step::Busy(MS)]);
        e.run_until(10_000 * MS);
        let r = collect(&e, 10_000 * MS);
        assert_eq!(r.completed_requests, 2);
        assert_eq!(r.row.hit_resp.mean_ms(), Some(10.0));
        assert_eq!(r.row.miss_resp.mean_ms(), Some(105.0));
        assert_eq!(r.row.miss_db.mean_ms(), Some(100.0));
        assert_eq!(r.row.all_resp.count, 2);
    }

    #[test]
    fn percentiles_from_samples() {
        let p = Percentiles::from_samples((1..=100).map(|i| i * MS).collect());
        // Nearest-rank on indexes 0..99: idx = round(99·p).
        assert_eq!(p.p50, 51.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        let empty = Percentiles::from_samples(vec![]);
        assert_eq!(empty.p50, 0.0);
        let single = Percentiles::from_samples(vec![7 * MS]);
        assert_eq!((single.p50, single.p95, single.p99), (7.0, 7.0, 7.0));
    }

    #[test]
    fn censored_jobs_count_as_waiting() {
        let mut e = Engine::new();
        let s = e.add_station("cpu", 1);
        // Second job can never finish before the horizon.
        for i in 0..2 {
            e.spawn_at(
                0,
                class::request(PageClass::Heavy, false),
                vec![Step::Acquire(s), Step::Busy(800 * MS + i), Step::Release(s)],
            );
        }
        e.run_until(1_000 * MS);
        let r = collect(&e, 1_000 * MS);
        assert_eq!(r.completed_requests, 1);
        assert_eq!(r.censored_requests, 1);
        assert_eq!(r.row.all_resp.count, 2);
        // Censored response = full kilosecond wait.
        assert!(r.row.all_resp.mean_ms().unwrap() > 800.0);
    }
}

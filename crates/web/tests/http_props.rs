//! Property tests for the HTTP substrate: page-key canonicalization is
//! permutation-invariant and injective over key parameters, and
//! cache-control directives round-trip through their header encoding.

use cacheportal_web::{CacheControl, HttpRequest, PageKey, ServletSpec};
use proptest::prelude::*;

fn param_strategy() -> impl Strategy<Value = (String, String)> {
    ("[a-z]{1,6}", "[a-zA-Z0-9]{0,8}").prop_map(|(k, v)| (k, v))
}

fn build_request(params: &[(String, String)]) -> HttpRequest {
    let refs: Vec<(&str, &str)> = params
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    HttpRequest::get("host", "/page", &refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Permuting GET parameters never changes the page key.
    #[test]
    fn page_key_is_permutation_invariant(
        params in prop::collection::vec(param_strategy(), 0..6),
        rotate in 0usize..6,
    ) {
        // Deduplicate names: repeated parameters are out of scope for keys.
        let mut seen = std::collections::HashSet::new();
        let params: Vec<_> = params
            .into_iter()
            .filter(|(k, _)| seen.insert(k.clone()))
            .collect();
        let names: Vec<&str> = params.iter().map(|(k, _)| k.as_str()).collect();
        let spec = ServletSpec::new("page").with_key_get_params(&names);

        let mut permuted = params.clone();
        let n = permuted.len();
        if n > 0 {
            permuted.rotate_left(rotate % n);
        }
        let k1 = PageKey::for_request(&build_request(&params), &spec);
        let k2 = PageKey::for_request(&build_request(&permuted), &spec);
        prop_assert_eq!(k1, k2);
    }

    /// Changing the value of any key parameter changes the key; changing a
    /// non-key parameter does not.
    #[test]
    fn page_key_depends_exactly_on_key_params(
        value_a in "[a-z]{1,6}",
        value_b in "[a-z]{1,6}",
        noise_a in "[a-z]{1,6}",
        noise_b in "[a-z]{1,6}",
    ) {
        let spec = ServletSpec::new("page").with_key_get_params(&["key"]);
        let with = |key: &str, noise: &str| {
            PageKey::for_request(
                &HttpRequest::get("host", "/page", &[("key", key), ("noise", noise)]),
                &spec,
            )
        };
        prop_assert_eq!(with(&value_a, &noise_a), with(&value_a, &noise_b));
        if value_a != value_b {
            prop_assert_ne!(with(&value_a, &noise_a), with(&value_b, &noise_a));
        }
    }

    /// Cache-control header encoding round-trips for arbitrary owners.
    #[test]
    fn cache_control_round_trips(owner in "[a-zA-Z0-9._-]{1,16}") {
        let cc = CacheControl::PrivateOwner(owner.clone());
        prop_assert_eq!(CacheControl::parse(&cc.header_value()), Some(cc.clone()));
        prop_assert!(cc.cacheable_by(&owner));
        prop_assert!(!cc.cacheable_by("someone-else"));
    }
}

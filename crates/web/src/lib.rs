#![warn(missing_docs)]

//! # cacheportal-web
//!
//! Web/application-server substrate for the CachePortal reproduction: an
//! HTTP request/response model with GET/POST/cookie parameters, cache-control
//! directives (including the `eject` and `private, owner="cacheportal"`
//! extensions from the paper), servlets with per-servlet cache-key specs, a
//! JDBC-style connection abstraction with pooling, and web/application
//! server components with the non-invasive logging seams the sniffer hooks.

pub mod appserver;
pub mod clock;
pub mod connection;
pub mod http;
pub mod render;
pub mod servlet;
pub mod url;
pub mod webserver;

pub use appserver::{AppServer, AppServerConfig, RequestObserver, RequestRecord};
pub use clock::{Clock, ManualClock, Micros, SystemClock};
pub use connection::{shared, Connection, ConnectionFactory, ConnectionPool, DbConnection, SharedDb};
pub use http::{CacheControl, HttpRequest, HttpResponse, Method, Status};
pub use servlet::{FnServlet, ParamSource, QueryTemplate, Servlet, ServletSpec, SqlServlet};
pub use url::PageKey;
pub use webserver::WebServer;

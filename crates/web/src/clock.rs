//! Logical time.
//!
//! The functional CachePortal system (and the sniffer's interval mapper)
//! needs timestamps, but wall-clock time would make tests flaky and the
//! request/query interval containment nondeterministic. All components take
//! a shared [`Clock`]; production code could plug a wall clock in, tests and
//! the harness use [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Microsecond timestamps.
pub type Micros = u64;

/// A source of monotonic time.
pub trait Clock: Send + Sync {
    /// Current time in microseconds.
    fn now_micros(&self) -> Micros;

    /// Advance by one minimal step and return the new time. Logging
    /// wrappers call this so that consecutive events get *distinct*
    /// timestamps even under a manual clock, which keeps the sniffer's
    /// request/query intervals well-nested. Wall clocks just return now.
    fn tick(&self) -> Micros {
        self.now_micros()
    }
}

/// Deterministic, manually advanced clock.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Create the clock.
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock::default())
    }

    /// Create a clock pre-set to `micros`.
    pub fn starting_at(micros: Micros) -> Arc<Self> {
        let c = ManualClock::default();
        c.now.store(micros, Ordering::SeqCst);
        Arc::new(c)
    }

    /// Advance time by `delta` microseconds; returns the new now.
    pub fn advance(&self, delta: Micros) -> Micros {
        self.now.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// Jump to an absolute time.
    pub fn set(&self, micros: Micros) {
        self.now.store(micros, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> Micros {
        self.now.load(Ordering::SeqCst)
    }

    fn tick(&self) -> Micros {
        self.advance(1)
    }
}

/// Wall clock (monotonic since process start).
#[derive(Debug)]
pub struct SystemClock {
    start: std::time::Instant,
}

impl SystemClock {
    /// Create the clock.
    pub fn new() -> Arc<Self> {
        Arc::new(SystemClock {
            start: std::time::Instant::now(),
        })
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> Micros {
        self.start.elapsed().as_micros() as Micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        assert_eq!(c.advance(100), 100);
        assert_eq!(c.now_micros(), 100);
        c.set(5);
        assert_eq!(c.now_micros(), 5);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}

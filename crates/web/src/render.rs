//! Deterministic HTML rendering of query results.
//!
//! Pages must render byte-identically for identical query results — the
//! freshness oracle compares cached bodies against regenerated ones.

use cacheportal_db::QueryResult;

/// Minimal HTML escaping for text content.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a query result as an HTML table.
pub fn html_table(result: &QueryResult) -> String {
    let mut out = String::with_capacity(128 + result.rows.len() * 64);
    out.push_str("<table>\n<tr>");
    for c in &result.columns {
        out.push_str("<th>");
        out.push_str(&escape(c));
        out.push_str("</th>");
    }
    out.push_str("</tr>\n");
    for row in &result.rows {
        out.push_str("<tr>");
        for v in row {
            out.push_str("<td>");
            out.push_str(&escape(&v.to_string()));
            out.push_str("</td>");
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>");
    out
}

/// Wrap body fragments into a full page.
pub fn html_page(title: &str, fragments: &[String]) -> String {
    let mut out = String::with_capacity(128 + fragments.iter().map(String::len).sum::<usize>());
    out.push_str("<html><head><title>");
    out.push_str(&escape(title));
    out.push_str("</title></head>\n<body>\n<h1>");
    out.push_str(&escape(title));
    out.push_str("</h1>\n");
    for f in fragments {
        out.push_str(f);
        out.push('\n');
    }
    out.push_str("</body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_db::Value;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn table_rendering_is_deterministic() {
        let r = QueryResult {
            columns: vec!["maker".into(), "price".into()],
            rows: vec![vec![Value::Str("Toyota".into()), Value::Int(25000)]],
        };
        let a = html_table(&r);
        let b = html_table(&r);
        assert_eq!(a, b);
        assert!(a.contains("<th>maker</th>"));
        assert!(a.contains("<td>25000</td>"));
    }

    #[test]
    fn page_wraps_fragments() {
        let p = html_page("Cars & Trucks", &["<p>x</p>".to_string()]);
        assert!(p.contains("<title>Cars &amp; Trucks</title>"));
        assert!(p.contains("<p>x</p>"));
    }
}

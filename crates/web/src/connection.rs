//! Database connection abstraction — the JDBC analogue.
//!
//! Servlets talk to the database through `dyn Connection`, never through the
//! engine directly. This is the seam the sniffer's query logger wraps
//! (§3.2): it works no matter how the servlet obtained the connection
//! (explicit driver, pool, or data source), exactly like the paper's JDBC
//! driver wrapper.

use cacheportal_db::{Database, DbResult, ExecOutcome, QueryResult, Value};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared database handle (one DBMS, many connections).
pub type SharedDb = Arc<RwLock<Database>>;

/// Create a shared handle from an engine instance.
pub fn shared(db: Database) -> SharedDb {
    Arc::new(RwLock::new(db))
}

/// A database connection: the servlet-facing query interface.
pub trait Connection: Send {
    /// Run a SELECT.
    fn query(&mut self, sql: &str, params: &[Value]) -> DbResult<QueryResult>;
    /// Run any statement (updates arrive through here too).
    fn execute(&mut self, sql: &str, params: &[Value]) -> DbResult<ExecOutcome>;
}

/// Direct connection to an in-process [`Database`] (the "native driver").
pub struct DbConnection {
    db: SharedDb,
}

impl DbConnection {
    /// Create the connection/pool.
    pub fn new(db: SharedDb) -> Self {
        DbConnection { db }
    }
}

impl Connection for DbConnection {
    fn query(&mut self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        // SELECTs go through the engine's read-only path: a shared read
        // lock suffices, so connections never serialize behind each other
        // (or behind the invalidator's pollers) on reads.
        self.db.read().query_with_params(sql, params)
    }

    fn execute(&mut self, sql: &str, params: &[Value]) -> DbResult<ExecOutcome> {
        self.db.write().execute_with_params(sql, params)
    }
}

/// Factory producing fresh connections (possibly wrapped by loggers).
pub type ConnectionFactory = Arc<dyn Fn() -> Box<dyn Connection> + Send + Sync>;

/// Pool statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct PoolStats {
    /// Total checkouts served.
    pub checkouts: u64,
    /// Connections created by the factory.
    pub created: u64,
    /// Checkouts served by creating a connection beyond `max` because the
    /// pool was empty (resource-pressure signal; the paper's §5.3 starvation
    /// story is about exactly this kind of contention).
    pub overflow: u64,
    /// Wall-clock microseconds spent inside `checkout` (lock contention +
    /// factory construction) across all checkouts.
    pub wait_micros: u64,
}

/// A fixed-size connection pool with overflow accounting — the BEA WebLogic
/// "connection pool / data source" analogue (§3.2).
pub struct ConnectionPool {
    factory: ConnectionFactory,
    idle: Mutex<Vec<Box<dyn Connection>>>,
    max: usize,
    created: AtomicU64,
    checkouts: AtomicU64,
    overflow: AtomicU64,
    wait_micros: AtomicU64,
}

impl ConnectionPool {
    /// Create the connection/pool.
    pub fn new(factory: ConnectionFactory, max: usize) -> Arc<Self> {
        Arc::new(ConnectionPool {
            factory,
            idle: Mutex::new(Vec::new()),
            max,
            created: AtomicU64::new(0),
            checkouts: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            wait_micros: AtomicU64::new(0),
        })
    }

    /// Borrow a connection; it returns to the pool when dropped.
    pub fn checkout(self: &Arc<Self>) -> PooledConnection {
        let start = std::time::Instant::now();
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let conn = {
            let mut idle = self.idle.lock();
            idle.pop()
        };
        let conn = conn.unwrap_or_else(|| {
            let prev = self.created.fetch_add(1, Ordering::Relaxed);
            if prev as usize >= self.max {
                self.overflow.fetch_add(1, Ordering::Relaxed);
            }
            (self.factory)()
        });
        self.wait_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        PooledConnection {
            conn: Some(conn),
            pool: Arc::clone(self),
        }
    }

    /// Pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            created: self.created.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            wait_micros: self.wait_micros.load(Ordering::Relaxed),
        }
    }

    fn checkin(&self, conn: Box<dyn Connection>) {
        let mut idle = self.idle.lock();
        if idle.len() < self.max {
            idle.push(conn);
        }
        // else: drop the overflow connection.
    }
}

/// RAII guard around a pooled connection.
pub struct PooledConnection {
    conn: Option<Box<dyn Connection>>,
    pool: Arc<ConnectionPool>,
}

impl Connection for PooledConnection {
    fn query(&mut self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        self.conn.as_mut().expect("live connection").query(sql, params)
    }

    fn execute(&mut self, sql: &str, params: &[Value]) -> DbResult<ExecOutcome> {
        self.conn
            .as_mut()
            .expect("live connection")
            .execute(sql, params)
    }
}

impl Drop for PooledConnection {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.pool.checkin(conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_db() -> SharedDb {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        shared(db)
    }

    #[test]
    fn direct_connection_queries() {
        let db = test_db();
        let mut conn = DbConnection::new(db);
        let r = conn.query("SELECT * FROM t WHERE a = $1", &[Value::Int(1)]).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(conn.execute("DELETE FROM t", &[]).unwrap().affected(), 2);
    }

    #[test]
    fn pool_reuses_connections() {
        let db = test_db();
        let factory: ConnectionFactory =
            Arc::new(move || Box::new(DbConnection::new(db.clone())));
        let pool = ConnectionPool::new(factory, 2);
        {
            let mut c1 = pool.checkout();
            c1.query("SELECT * FROM t", &[]).unwrap();
        }
        {
            let _c1 = pool.checkout();
            let _c2 = pool.checkout();
        }
        let s = pool.stats();
        assert_eq!(s.checkouts, 3);
        assert_eq!(s.created, 2, "second round reuses the returned conn");
        assert_eq!(s.overflow, 0);
    }

    #[test]
    fn pool_overflow_is_counted_and_dropped() {
        let db = test_db();
        let factory: ConnectionFactory =
            Arc::new(move || Box::new(DbConnection::new(db.clone())));
        let pool = ConnectionPool::new(factory, 1);
        {
            let _c1 = pool.checkout();
            let _c2 = pool.checkout();
            let _c3 = pool.checkout();
        }
        let s = pool.stats();
        assert_eq!(s.created, 3);
        assert_eq!(s.overflow, 2);
        // Only `max` connections are retained.
        {
            let _c = pool.checkout();
        }
        assert_eq!(pool.stats().created, 3, "retained connection was reused");
    }
}

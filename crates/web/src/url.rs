//! Page identity: the paper's "URL" (§2.3.1).
//!
//! A [`PageKey`] is the canonical cache identity of a dynamically generated
//! page: host + path + the *key* parameters (GET/POST/cookie) declared by the
//! servlet spec, with parameters sorted so that permutations of the query
//! string map to the same cached page.

use crate::http::HttpRequest;
use crate::servlet::ServletSpec;
use std::fmt;

/// Canonical page identifier used as the cache key.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct PageKey(String);

impl PageKey {
    /// Build the canonical key for `req` under `spec`'s key-parameter lists.
    ///
    /// Parameters not named in the spec are ignored (the paper: "some
    /// parameters may need to be used as keys/indexes in the cache, whereas
    /// some other may not").
    pub fn for_request(req: &HttpRequest, spec: &ServletSpec) -> PageKey {
        let mut parts: Vec<String> = Vec::new();
        let mut collect = |kind: &str, names: &[String], from: &[(String, String)]| {
            for name in names {
                if let Some((_, v)) = from.iter().find(|(k, _)| k == name) {
                    parts.push(format!("{kind}:{name}={v}"));
                }
            }
        };
        collect("g", &spec.key_get_params, &req.get);
        collect("p", &spec.key_post_params, &req.post);
        collect("c", &spec.key_cookie_params, &req.cookies);
        parts.sort();
        PageKey(format!("{}{}?{}", req.host, req.path, parts.join("&")))
    }

    /// Raw key constructor (for tests and invalidation messages).
    pub fn raw(s: impl Into<String>) -> PageKey {
        PageKey(s.into())
    }

    /// The canonical key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servlet::ServletSpec;

    fn spec() -> ServletSpec {
        ServletSpec::new("carSearch")
            .with_key_get_params(&["maxprice", "maker"])
            .with_key_cookie_params(&["locale"])
    }

    #[test]
    fn key_param_order_is_canonical() {
        let r1 = HttpRequest::get("h", "/s", &[("maker", "Toyota"), ("maxprice", "20000")]);
        let r2 = HttpRequest::get("h", "/s", &[("maxprice", "20000"), ("maker", "Toyota")]);
        assert_eq!(
            PageKey::for_request(&r1, &spec()),
            PageKey::for_request(&r2, &spec())
        );
    }

    #[test]
    fn non_key_params_ignored() {
        let r1 = HttpRequest::get("h", "/s", &[("maker", "Toyota"), ("tracking", "xyz")]);
        let r2 = HttpRequest::get("h", "/s", &[("maker", "Toyota"), ("tracking", "abc")]);
        assert_eq!(
            PageKey::for_request(&r1, &spec()),
            PageKey::for_request(&r2, &spec())
        );
    }

    #[test]
    fn key_cookies_distinguish_pages() {
        let base = HttpRequest::get("h", "/s", &[("maker", "Toyota")]);
        let en = base.clone().with_cookie("locale", "en");
        let de = base.with_cookie("locale", "de");
        assert_ne!(
            PageKey::for_request(&en, &spec()),
            PageKey::for_request(&de, &spec())
        );
    }

    #[test]
    fn different_values_different_keys() {
        let r1 = HttpRequest::get("h", "/s", &[("maker", "Toyota")]);
        let r2 = HttpRequest::get("h", "/s", &[("maker", "Honda")]);
        assert_ne!(
            PageKey::for_request(&r1, &spec()),
            PageKey::for_request(&r2, &spec())
        );
    }

    #[test]
    fn host_and_path_in_key() {
        let r1 = HttpRequest::get("h1", "/s", &[]);
        let r2 = HttpRequest::get("h2", "/s", &[]);
        assert_ne!(
            PageKey::for_request(&r1, &spec()),
            PageKey::for_request(&r2, &spec())
        );
    }
}

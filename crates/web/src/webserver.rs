//! The web server front: serves static content directly, forwards dynamic
//! requests to the application server (paper Figure 5, arrows (1)-(2) and
//! (5)-(6)).

use crate::appserver::AppServer;
use crate::http::{CacheControl, HttpRequest, HttpResponse};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A web server node.
pub struct WebServer {
    app: Arc<AppServer>,
    static_pages: RwLock<HashMap<String, String>>,
    hits_static: AtomicU64,
    hits_dynamic: AtomicU64,
}

impl WebServer {
    /// Create a web server fronting the application server.
    pub fn new(app: Arc<AppServer>) -> Self {
        WebServer {
            app,
            static_pages: RwLock::new(HashMap::new()),
            hits_static: AtomicU64::new(0),
            hits_dynamic: AtomicU64::new(0),
        }
    }

    /// Publish a static page at `path`.
    pub fn add_static(&self, path: &str, body: &str) {
        self.static_pages
            .write()
            .insert(path.to_string(), body.to_string());
    }

    /// The application server behind this web server.
    pub fn app(&self) -> &Arc<AppServer> {
        &self.app
    }

    /// Serve one request.
    pub fn handle(&self, req: &HttpRequest) -> HttpResponse {
        if let Some(body) = self.static_pages.read().get(&req.path) {
            self.hits_static.fetch_add(1, Ordering::Relaxed);
            return HttpResponse::ok(body.clone(), CacheControl::Public);
        }
        self.hits_dynamic.fetch_add(1, Ordering::Relaxed);
        self.app.handle(req)
    }

    /// (static, dynamic) request counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits_static.load(Ordering::Relaxed),
            self.hits_dynamic.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appserver::AppServerConfig;
    use crate::clock::ManualClock;
    use crate::connection::{shared, ConnectionFactory, ConnectionPool, DbConnection};
    use cacheportal_db::Database;

    fn server() -> WebServer {
        let db = shared(Database::new());
        let factory: ConnectionFactory =
            Arc::new(move || Box::new(DbConnection::new(db.clone())));
        let app = AppServer::new(
            ConnectionPool::new(factory, 2),
            ManualClock::new(),
            AppServerConfig::default(),
        );
        WebServer::new(Arc::new(app))
    }

    #[test]
    fn static_pages_are_public() {
        let ws = server();
        ws.add_static("/index.html", "<html>hello</html>");
        let resp = ws.handle(&HttpRequest::get("h", "/index.html", &[]));
        assert_eq!(resp.status.code(), 200);
        assert_eq!(resp.cache_control, CacheControl::Public);
        assert_eq!(ws.counters(), (1, 0));
    }

    #[test]
    fn dynamic_falls_through_to_app() {
        let ws = server();
        let resp = ws.handle(&HttpRequest::get("h", "/unknown", &[]));
        assert_eq!(resp.status.code(), 404);
        assert_eq!(ws.counters(), (0, 1));
    }
}

//! HTTP request/response model.
//!
//! The paper defines a page identifier (§2.3.1) as the `HTTP_HOST` plus the
//! GET query string, the cookies, and the POST body — of which only the
//! parameters declared as *keys* by the servlet participate in cache
//! identity. [`HttpRequest`] carries all three parameter sets.

use std::fmt;

/// HTTP method; the model only distinguishes GET/POST semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
}

/// An incoming request.
///
/// Serializable: the durable layer persists each cached page's origin
/// request so crash recovery can rebuild the freshness oracle.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// `HTTP_HOST`.
    pub host: String,
    /// Path component, e.g. `/servlet/carSearch`.
    pub path: String,
    /// GET parameters (`QUERY_STRING`), in arrival order.
    pub get: Vec<(String, String)>,
    /// POST parameters (message body), in arrival order.
    pub post: Vec<(String, String)>,
    /// Cookies (`HTTP_COOKIE`).
    pub cookies: Vec<(String, String)>,
}

impl HttpRequest {
    /// A GET request with query parameters.
    pub fn get(host: &str, path: &str, params: &[(&str, &str)]) -> Self {
        HttpRequest {
            method: Method::Get,
            host: host.to_string(),
            path: path.to_string(),
            get: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            post: Vec::new(),
            cookies: Vec::new(),
        }
    }

    /// A POST request with body parameters.
    pub fn post(host: &str, path: &str, params: &[(&str, &str)]) -> Self {
        HttpRequest {
            method: Method::Post,
            host: host.to_string(),
            path: path.to_string(),
            get: Vec::new(),
            post: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cookies: Vec::new(),
        }
    }

    /// Builder-style cookie attachment.
    pub fn with_cookie(mut self, name: &str, value: &str) -> Self {
        self.cookies.push((name.to_string(), value.to_string()));
        self
    }

    fn lookup<'a>(list: &'a [(String, String)], key: &str) -> Option<&'a str> {
        list.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// GET parameter by name.
    pub fn get_param(&self, key: &str) -> Option<&str> {
        Self::lookup(&self.get, key)
    }

    /// POST parameter by name.
    pub fn post_param(&self, key: &str) -> Option<&str> {
        Self::lookup(&self.post, key)
    }

    /// Cookie value by name.
    pub fn cookie(&self, key: &str) -> Option<&str> {
        Self::lookup(&self.cookies, key)
    }

    /// The request string as the request logger records it:
    /// `path?k1=v1&k2=v2` (GET parameters only).
    pub fn request_string(&self) -> String {
        if self.get.is_empty() {
            self.path.clone()
        } else {
            let qs: Vec<String> = self.get.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}?{}", self.path, qs.join("&"))
        }
    }

    /// Cookie string as logged (`k1=v1; k2=v2`).
    pub fn cookie_string(&self) -> String {
        self.cookies
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// POST string as logged.
    pub fn post_string(&self) -> String {
        self.post
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("&")
    }
}

/// Cacheability directive on a response.
///
/// `PrivateOwner` is the paper's rewritten form
/// (`Cache-Control: private, owner="cacheportal"`, §3.1): ordinary caches
/// treat it as non-cacheable, CachePortal-compliant caches may cache it.
/// `Eject` is the NetCache-style invalidation message (§4.2.4) carried by a
/// synthetic request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheControl {
    /// Cacheable by anyone (static pages).
    Public,
    /// `no-cache`: not cacheable at all.
    NoCache,
    /// `private, owner="<owner>"`: cacheable only by caches run by `owner`.
    PrivateOwner(String),
    /// `eject`: invalidate this URL in the receiving cache.
    Eject,
}

impl CacheControl {
    /// Header value serialization.
    pub fn header_value(&self) -> String {
        match self {
            CacheControl::Public => "public".to_string(),
            CacheControl::NoCache => "no-cache".to_string(),
            CacheControl::PrivateOwner(o) => format!("private, owner=\"{o}\""),
            CacheControl::Eject => "eject".to_string(),
        }
    }

    /// Parse a header value (inverse of [`CacheControl::header_value`]).
    pub fn parse(s: &str) -> Option<CacheControl> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("public") {
            return Some(CacheControl::Public);
        }
        if t.eq_ignore_ascii_case("no-cache") {
            return Some(CacheControl::NoCache);
        }
        if t.eq_ignore_ascii_case("eject") {
            return Some(CacheControl::Eject);
        }
        let lower = t.to_ascii_lowercase();
        if lower.starts_with("private") {
            if let Some(idx) = lower.find("owner=") {
                let rest = &t[idx + "owner=".len()..];
                let owner = rest.trim().trim_matches('"');
                return Some(CacheControl::PrivateOwner(owner.to_string()));
            }
        }
        None
    }

    /// May a cache owned by `owner` store a response with this directive?
    pub fn cacheable_by(&self, owner: &str) -> bool {
        match self {
            CacheControl::Public => true,
            CacheControl::NoCache | CacheControl::Eject => false,
            CacheControl::PrivateOwner(o) => o == owner,
        }
    }
}

impl fmt::Display for CacheControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.header_value())
    }
}

/// HTTP status subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200 OK.
    Ok,
    /// 404 Not Found.
    NotFound,
    /// 500 Internal Server Error.
    ServerError,
}

impl Status {
    /// Numeric status code.
    pub fn code(&self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::NotFound => 404,
            Status::ServerError => 500,
        }
    }
}

/// An outgoing response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Response status.
    pub status: Status,
    /// Cacheability directive.
    pub cache_control: CacheControl,
    /// Response body (HTML).
    pub body: String,
}

impl HttpResponse {
    /// A 200 response with the given body and directive.
    pub fn ok(body: impl Into<String>, cache_control: CacheControl) -> Self {
        HttpResponse {
            status: Status::Ok,
            cache_control,
            body: body.into(),
        }
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        HttpResponse {
            status: Status::NotFound,
            cache_control: CacheControl::NoCache,
            body: "<html><body>404 Not Found</body></html>".to_string(),
        }
    }

    /// A 500 response carrying the error message.
    pub fn server_error(msg: &str) -> Self {
        HttpResponse {
            status: Status::ServerError,
            cache_control: CacheControl::NoCache,
            body: format!("<html><body>500 Internal Server Error: {msg}</body></html>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_strings() {
        let r = HttpRequest::get("shop.example.com", "/catalog", &[("cat", "sedans"), ("page", "2")])
            .with_cookie("session", "abc");
        assert_eq!(r.request_string(), "/catalog?cat=sedans&page=2");
        assert_eq!(r.cookie_string(), "session=abc");
        assert_eq!(r.get_param("cat"), Some("sedans"));
        assert_eq!(r.get_param("nope"), None);
        assert_eq!(r.cookie("session"), Some("abc"));
    }

    #[test]
    fn post_string() {
        let r = HttpRequest::post("h", "/p", &[("a", "1"), ("b", "2")]);
        assert_eq!(r.post_string(), "a=1&b=2");
        assert_eq!(r.request_string(), "/p");
        assert_eq!(r.post_param("b"), Some("2"));
    }

    #[test]
    fn cache_control_round_trip() {
        for cc in [
            CacheControl::Public,
            CacheControl::NoCache,
            CacheControl::Eject,
            CacheControl::PrivateOwner("cacheportal".into()),
        ] {
            assert_eq!(CacheControl::parse(&cc.header_value()), Some(cc.clone()));
        }
        assert_eq!(CacheControl::parse("garbage"), None);
    }

    #[test]
    fn cacheable_by_owner_rules() {
        let cc = CacheControl::PrivateOwner("cacheportal".into());
        assert!(cc.cacheable_by("cacheportal"));
        assert!(!cc.cacheable_by("squid"));
        assert!(!CacheControl::NoCache.cacheable_by("cacheportal"));
        assert!(CacheControl::Public.cacheable_by("anyone"));
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(HttpResponse::not_found().status.code(), 404);
        assert_eq!(HttpResponse::server_error("x").status.code(), 500);
    }
}

//! The application server: routes requests to servlets, manages the
//! connection pool, runs the request-logger wrapper, and rewrites
//! cache-control directives for CachePortal-compliant caches (§3.1).

use crate::clock::{Clock, Micros};
use crate::connection::ConnectionPool;
use crate::http::{CacheControl, HttpRequest, HttpResponse};
use crate::servlet::Servlet;
use crate::url::PageKey;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What the request logger records per request (§3.1's five fields).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RequestRecord {
    /// Unique request id.
    pub id: u64,
    /// Servlet that served the request.
    pub servlet: String,
    /// `path?get-params` string.
    pub request_string: String,
    /// Cookie string.
    pub cookie_string: String,
    /// POST string.
    pub post_string: String,
    /// Canonical page key (host + path + key params).
    pub page_key: PageKey,
    /// Receive timestamp.
    pub received: Micros,
    /// Delivery timestamp.
    pub delivered: Micros,
}

/// Observer interface implemented by the sniffer's request logger.
pub trait RequestObserver: Send + Sync {
    /// Called once per successfully served request.
    fn on_request(&self, record: RequestRecord);
}

/// Application server configuration.
#[derive(Debug, Clone)]
pub struct AppServerConfig {
    /// When true (CachePortal deployment), cacheable dynamic pages are
    /// tagged `private, owner="cacheportal"` instead of `no-cache`.
    pub rewrite_cache_control: bool,
    /// Owner string used in the rewritten directive.
    pub cache_owner: String,
}

impl Default for AppServerConfig {
    fn default() -> Self {
        AppServerConfig {
            rewrite_cache_control: false,
            cache_owner: "cacheportal".to_string(),
        }
    }
}

/// The application server.
pub struct AppServer {
    routes: RwLock<HashMap<String, Arc<dyn Servlet>>>,
    pool: Arc<ConnectionPool>,
    clock: Arc<dyn Clock>,
    observer: RwLock<Option<Arc<dyn RequestObserver>>>,
    config: AppServerConfig,
    next_id: AtomicU64,
    requests_served: AtomicU64,
}

impl AppServer {
    /// Create an application server over a connection pool.
    pub fn new(pool: Arc<ConnectionPool>, clock: Arc<dyn Clock>, config: AppServerConfig) -> Self {
        AppServer {
            routes: RwLock::new(HashMap::new()),
            pool,
            clock,
            observer: RwLock::new(None),
            config,
            next_id: AtomicU64::new(1),
            requests_served: AtomicU64::new(0),
        }
    }

    /// Register a servlet at `/{spec.name}`.
    pub fn register(&self, servlet: Arc<dyn Servlet>) {
        let path = format!("/{}", servlet.spec().name);
        self.routes.write().insert(path, servlet);
    }

    /// Install the request observer (the sniffer's request logger). The
    /// paper's design is non-invasive: this wrapper is the only touch point.
    pub fn set_observer(&self, obs: Arc<dyn RequestObserver>) {
        *self.observer.write() = Some(obs);
    }

    /// Look up the servlet for a request path.
    pub fn servlet_for(&self, path: &str) -> Option<Arc<dyn Servlet>> {
        self.routes.read().get(path).cloned()
    }

    /// Registered servlets (deployment introspection).
    pub fn servlets(&self) -> Vec<Arc<dyn Servlet>> {
        self.routes.read().values().cloned().collect()
    }

    /// Total requests routed to servlets.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// The connection pool this server draws from (checkout counters and
    /// wait-time statistics live there).
    pub fn pool(&self) -> &Arc<ConnectionPool> {
        &self.pool
    }

    /// Handle one request end-to-end: route, execute, log, tag.
    pub fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let Some(servlet) = self.servlet_for(&req.path) else {
            return HttpResponse::not_found();
        };
        self.requests_served.fetch_add(1, Ordering::Relaxed);

        let received = self.clock.tick();
        let mut conn = self.pool.checkout();
        let outcome = servlet.handle(req, &mut conn);
        drop(conn);
        let delivered = self.clock.tick();

        let body = match outcome {
            Ok(body) => body,
            Err(e) => return HttpResponse::server_error(&e.to_string()),
        };

        // Request-logger wrapper: record after successful delivery.
        let spec = servlet.spec();
        if let Some(obs) = self.observer.read().as_ref() {
            obs.on_request(RequestRecord {
                id: self.next_id.fetch_add(1, Ordering::Relaxed),
                servlet: spec.name.clone(),
                request_string: req.request_string(),
                cookie_string: req.cookie_string(),
                post_string: req.post_string(),
                page_key: PageKey::for_request(req, spec),
                received,
                delivered,
            });
        }

        // §3.1: translate `no-cache` into the owner-restricted directive so
        // CachePortal-compliant caches may store the page.
        let cache_control = if spec.cacheable && self.config.rewrite_cache_control {
            CacheControl::PrivateOwner(self.config.cache_owner.clone())
        } else {
            CacheControl::NoCache
        };
        HttpResponse::ok(body, cache_control)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::connection::{shared, ConnectionFactory, DbConnection};
    use crate::servlet::{ParamSource, QueryTemplate, ServletSpec, SqlServlet};
    use cacheportal_db::schema::ColType;
    use cacheportal_db::Database;
    use parking_lot::Mutex;

    fn app(rewrite: bool) -> (AppServer, Arc<ManualClock>) {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)")
            .unwrap();
        db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000)")
            .unwrap();
        let sdb = shared(db);
        let factory: ConnectionFactory =
            Arc::new(move || Box::new(DbConnection::new(sdb.clone())));
        let clock = ManualClock::new();
        let app = AppServer::new(
            ConnectionPool::new(factory, 4),
            clock.clone(),
            AppServerConfig {
                rewrite_cache_control: rewrite,
                ..Default::default()
            },
        );
        app.register(Arc::new(SqlServlet::new(
            ServletSpec::new("cars").with_key_get_params(&["maxprice"]),
            "Cars",
            vec![QueryTemplate::new(
                "SELECT * FROM Car WHERE price <= $1",
                vec![ParamSource::Get("maxprice".into(), ColType::Int)],
            )],
        )));
        (app, clock)
    }

    struct Capture(Mutex<Vec<RequestRecord>>);
    impl RequestObserver for Capture {
        fn on_request(&self, r: RequestRecord) {
            self.0.lock().push(r);
        }
    }

    #[test]
    fn routes_and_renders() {
        let (app, _) = app(false);
        let resp = app.handle(&HttpRequest::get("h", "/cars", &[("maxprice", "30000")]));
        assert_eq!(resp.status.code(), 200);
        assert!(resp.body.contains("Avalon"));
        assert_eq!(resp.cache_control, CacheControl::NoCache);
        assert_eq!(app.requests_served(), 1);
    }

    #[test]
    fn unknown_route_404() {
        let (app, _) = app(false);
        let resp = app.handle(&HttpRequest::get("h", "/nope", &[]));
        assert_eq!(resp.status.code(), 404);
    }

    #[test]
    fn servlet_error_becomes_500() {
        let (app, _) = app(false);
        let resp = app.handle(&HttpRequest::get("h", "/cars", &[])); // missing param
        assert_eq!(resp.status.code(), 500);
    }

    #[test]
    fn cacheportal_mode_rewrites_directive() {
        let (app, _) = app(true);
        let resp = app.handle(&HttpRequest::get("h", "/cars", &[("maxprice", "30000")]));
        assert_eq!(
            resp.cache_control,
            CacheControl::PrivateOwner("cacheportal".into())
        );
    }

    #[test]
    fn observer_gets_timestamps_and_key() {
        let (app, clock) = app(false);
        let cap = Arc::new(Capture(Mutex::new(Vec::new())));
        app.set_observer(cap.clone());
        clock.set(100);
        app.handle(&HttpRequest::get("h", "/cars", &[("maxprice", "30000")]));
        let recs = cap.0.lock();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert!(r.received > 100 && r.delivered > r.received);
        assert_eq!(r.servlet, "cars");
        assert!(r.request_string.contains("maxprice=30000"));
        assert!(r.page_key.as_str().contains("maxprice=30000"));
    }

    #[test]
    fn failed_requests_are_not_logged() {
        let (app, _) = app(false);
        let cap = Arc::new(Capture(Mutex::new(Vec::new())));
        app.set_observer(cap.clone());
        app.handle(&HttpRequest::get("h", "/cars", &[])); // 500
        assert!(cap.0.lock().is_empty());
    }
}

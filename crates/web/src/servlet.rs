//! Servlets: the application logic that turns a request into a page by
//! issuing database queries.
//!
//! [`ServletSpec`] carries the metadata the sniffer keeps per servlet
//! (§3.1): key GET/POST/cookie parameters, temporal sensitivity to updates,
//! and cacheability. [`SqlServlet`] is a declarative servlet good enough for
//! every workload in the paper: a list of parameterized query templates whose
//! parameters are filled from the request, rendered as HTML tables.

use crate::connection::Connection;
use crate::http::HttpRequest;
use crate::render;
use cacheportal_db::schema::ColType;
use cacheportal_db::{DbError, DbResult, Value};

/// Per-servlet metadata (paper §3.1's six fields, minus collected stats
/// which live in the invalidator's statistics store).
#[derive(Debug, Clone, PartialEq)]
pub struct ServletSpec {
    /// Unique servlet name (also used as its route).
    pub name: String,
    /// GET parameters that participate in cache identity.
    pub key_get_params: Vec<String>,
    /// POST parameters that participate in cache identity.
    pub key_post_params: Vec<String>,
    /// Cookies that participate in cache identity.
    pub key_cookie_params: Vec<String>,
    /// How stale (ms) this servlet's pages may be; `None` = no bound.
    /// Pages more sensitive than the invalidator's sync interval are marked
    /// non-cacheable by the deployment.
    pub temporal_sensitivity_ms: Option<u64>,
    /// Whether the pages this servlet generates may be cached at all.
    pub cacheable: bool,
}

impl ServletSpec {
    /// A spec with the given name/route, no key parameters, cacheable.
    pub fn new(name: &str) -> Self {
        ServletSpec {
            name: name.to_string(),
            key_get_params: Vec::new(),
            key_post_params: Vec::new(),
            key_cookie_params: Vec::new(),
            temporal_sensitivity_ms: None,
            cacheable: true,
        }
    }

    /// Declare the GET parameters that form the cache key.
    pub fn with_key_get_params(mut self, names: &[&str]) -> Self {
        self.key_get_params = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declare the POST parameters that form the cache key.
    pub fn with_key_post_params(mut self, names: &[&str]) -> Self {
        self.key_post_params = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declare the cookies that form the cache key.
    pub fn with_key_cookie_params(mut self, names: &[&str]) -> Self {
        self.key_cookie_params = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declare how stale (ms) pages may be.
    pub fn with_temporal_sensitivity_ms(mut self, ms: u64) -> Self {
        self.temporal_sensitivity_ms = Some(ms);
        self
    }

    /// Mark every page of this servlet non-cacheable.
    pub fn non_cacheable(mut self) -> Self {
        self.cacheable = false;
        self
    }
}

/// Application logic bound to a route.
pub trait Servlet: Send + Sync {
    /// The servlet’s metadata.
    fn spec(&self) -> &ServletSpec;

    /// Produce the page body. All database access must go through `conn`
    /// so that deployments can interpose the query logger.
    fn handle(&self, req: &HttpRequest, conn: &mut dyn Connection) -> DbResult<String>;
}

/// Where a SQL parameter's value comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamSource {
    /// GET parameter, converted to the given type.
    Get(String, ColType),
    /// POST parameter.
    Post(String, ColType),
    /// Cookie.
    Cookie(String, ColType),
    /// Fixed value.
    Const(Value),
    /// GET parameter spliced into a string template: every `{}` in the
    /// template is replaced by the raw parameter text and the result is a
    /// `Value::Str`. Built for LIKE patterns ("s{}%") where the query
    /// parameter is a fragment of the pattern, not the whole value.
    GetPattern(String, String),
}

impl ParamSource {
    fn resolve(&self, req: &HttpRequest) -> DbResult<Value> {
        let (raw, ty, name) = match self {
            ParamSource::Const(v) => return Ok(v.clone()),
            ParamSource::GetPattern(n, template) => {
                let raw = req.get_param(n).ok_or_else(|| {
                    DbError::Unsupported(format!("missing request parameter '{n}'"))
                })?;
                return Ok(Value::Str(template.replace("{}", raw)));
            }
            ParamSource::Get(n, t) => (req.get_param(n), *t, n),
            ParamSource::Post(n, t) => (req.post_param(n), *t, n),
            ParamSource::Cookie(n, t) => (req.cookie(n), *t, n),
        };
        let raw = raw.ok_or_else(|| {
            DbError::Unsupported(format!("missing request parameter '{name}'"))
        })?;
        convert(raw, ty)
            .ok_or_else(|| DbError::Unsupported(format!("parameter '{name}' is not a {ty}")))
    }
}

fn convert(raw: &str, ty: ColType) -> Option<Value> {
    match ty {
        ColType::Int => raw.parse::<i64>().ok().map(Value::Int),
        ColType::Float => raw.parse::<f64>().ok().map(Value::Float),
        ColType::Str => Some(Value::Str(raw.to_string())),
    }
}

/// One parameterized query a [`SqlServlet`] runs.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    /// SQL with `$1…$n` placeholders — the paper's query type (§2.3.2).
    pub sql: String,
    /// One source per placeholder, in order.
    pub params: Vec<ParamSource>,
}

impl QueryTemplate {
    /// A template from parameterized SQL and its parameter sources.
    pub fn new(sql: &str, params: Vec<ParamSource>) -> Self {
        QueryTemplate {
            sql: sql.to_string(),
            params,
        }
    }
}

/// Declarative servlet: runs its templates and renders the results.
pub struct SqlServlet {
    spec: ServletSpec,
    title: String,
    queries: Vec<QueryTemplate>,
}

impl SqlServlet {
    /// A servlet rendering `queries` under `title`.
    pub fn new(spec: ServletSpec, title: &str, queries: Vec<QueryTemplate>) -> Self {
        SqlServlet {
            spec,
            title: title.to_string(),
            queries,
        }
    }
}

impl Servlet for SqlServlet {
    fn spec(&self) -> &ServletSpec {
        &self.spec
    }

    fn handle(&self, req: &HttpRequest, conn: &mut dyn Connection) -> DbResult<String> {
        let mut fragments = Vec::with_capacity(self.queries.len());
        for q in &self.queries {
            let params: Vec<Value> = q
                .params
                .iter()
                .map(|p| p.resolve(req))
                .collect::<DbResult<_>>()?;
            let result = conn.query(&q.sql, &params)?;
            fragments.push(render::html_table(&result));
        }
        Ok(render::html_page(&self.title, &fragments))
    }
}

/// A servlet backed by a closure — for application logic that doesn't fit
/// the declarative [`SqlServlet`] mold (conditional queries, custom
/// rendering, write-then-read flows).
pub struct FnServlet<F> {
    spec: ServletSpec,
    handler: F,
}

impl<F> FnServlet<F>
where
    F: Fn(&HttpRequest, &mut dyn Connection) -> DbResult<String> + Send + Sync,
{
    /// A servlet delegating to `handler`.
    pub fn new(spec: ServletSpec, handler: F) -> Self {
        FnServlet { spec, handler }
    }
}

impl<F> Servlet for FnServlet<F>
where
    F: Fn(&HttpRequest, &mut dyn Connection) -> DbResult<String> + Send + Sync,
{
    fn spec(&self) -> &ServletSpec {
        &self.spec
    }

    fn handle(&self, req: &HttpRequest, conn: &mut dyn Connection) -> DbResult<String> {
        (self.handler)(req, conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::{shared, DbConnection};
    use cacheportal_db::Database;

    fn conn() -> DbConnection {
        let mut db = Database::new();
        db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)")
            .unwrap();
        db.execute(
            "INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)",
        )
        .unwrap();
        DbConnection::new(shared(db))
    }

    fn search_servlet() -> SqlServlet {
        SqlServlet::new(
            ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
            "Car search",
            vec![QueryTemplate::new(
                "SELECT maker, model, price FROM Car WHERE price <= $1 ORDER BY price",
                vec![ParamSource::Get("maxprice".into(), ColType::Int)],
            )],
        )
    }

    #[test]
    fn sql_servlet_renders_filtered_results() {
        let s = search_servlet();
        let mut c = conn();
        let req = HttpRequest::get("h", "/carSearch", &[("maxprice", "20000")]);
        let body = s.handle(&req, &mut c).unwrap();
        assert!(body.contains("Civic"));
        assert!(!body.contains("Avalon"));
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let s = search_servlet();
        let mut c = conn();
        let req = HttpRequest::get("h", "/carSearch", &[]);
        assert!(s.handle(&req, &mut c).is_err());
    }

    #[test]
    fn bad_typed_parameter_is_an_error() {
        let s = search_servlet();
        let mut c = conn();
        let req = HttpRequest::get("h", "/carSearch", &[("maxprice", "cheap")]);
        assert!(s.handle(&req, &mut c).is_err());
    }

    #[test]
    fn const_and_cookie_params() {
        let s = SqlServlet::new(
            ServletSpec::new("s").with_key_cookie_params(&["maker"]),
            "t",
            vec![QueryTemplate::new(
                "SELECT model FROM Car WHERE maker = $1 AND price < $2",
                vec![
                    ParamSource::Cookie("maker".into(), ColType::Str),
                    ParamSource::Const(Value::Int(1_000_000)),
                ],
            )],
        );
        let mut c = conn();
        let req = HttpRequest::get("h", "/s", &[]).with_cookie("maker", "Honda");
        let body = s.handle(&req, &mut c).unwrap();
        assert!(body.contains("Civic"));
        assert!(!body.contains("Avalon"));
    }

    #[test]
    fn fn_servlet_runs_closure() {
        let s = FnServlet::new(
            ServletSpec::new("fn").with_key_get_params(&["min"]),
            |req: &HttpRequest, conn: &mut dyn Connection| {
                let min: i64 = req.get_param("min").unwrap_or("0").parse().unwrap_or(0);
                let r = conn.query(
                    "SELECT COUNT(*) FROM Car WHERE price >= $1",
                    &[Value::Int(min)],
                )?;
                Ok(format!("<html><body>count={}</body></html>", r.rows[0][0]))
            },
        );
        let mut c = conn();
        let req = HttpRequest::get("h", "/fn", &[("min", "20000")]);
        assert_eq!(
            s.handle(&req, &mut c).unwrap(),
            "<html><body>count=1</body></html>"
        );
    }

    #[test]
    fn spec_builder() {
        let spec = ServletSpec::new("x")
            .with_key_get_params(&["a"])
            .with_temporal_sensitivity_ms(500)
            .non_cacheable();
        assert_eq!(spec.temporal_sensitivity_ms, Some(500));
        assert!(!spec.cacheable);
    }
}

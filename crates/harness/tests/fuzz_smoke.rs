//! The harness's own acceptance tests: the CI smoke matrix, per-class
//! fault coverage, reproducer round-tripping, and (feature-gated) the
//! canary proving a broken invalidator is actually caught.

use cacheportal_harness::{
    gen_actions, run_scenario, sweep, FaultClass, Reproducer, Scenario, SweepConfig, ALL_CLASSES,
};
use std::collections::BTreeSet;

/// Acceptance: ≥50 seeds × ≥40 actions, zero staleness violations, with
/// all three policies, workers ∈ {1, 4}, and every fault class covered.
/// (Gated off under the canary feature: with invalidation deliberately
/// broken, this matrix is *supposed* to fail — that is the canary test.)
#[cfg(not(feature = "canary"))]
#[test]
fn smoke_matrix_has_zero_staleness_violations() {
    let cfg = SweepConfig::smoke();
    assert!(cfg.seeds >= 50 && cfg.actions >= 40, "smoke config below the floor");

    // The matrix really covers what it claims: policies and workers cycle
    // with the seed, classes with seed mod class-count.
    let mut policies = BTreeSet::new();
    let mut workers = BTreeSet::new();
    let mut classes = BTreeSet::new();
    for seed in 0..cfg.seeds {
        let (sc, class) = cacheportal_harness::sweep_scenario(seed, &cfg.classes);
        policies.insert(sc.policy);
        workers.insert(sc.workers);
        classes.insert(class.as_str());
    }
    assert_eq!(policies.len(), 3, "all three policies in the matrix");
    assert_eq!(workers, BTreeSet::from([1, 4]));
    assert_eq!(classes.len(), ALL_CLASSES.len(), "every fault class in the matrix");

    let outcome = sweep(&cfg, None);
    if let Some(repro) = &outcome.failure {
        panic!(
            "smoke violation (shrunk to {} actions): {}\n{}",
            repro.actions.len(),
            repro.violation,
            repro.to_json()
        );
    }
    assert_eq!(outcome.runs, cfg.seeds);
}

/// Every fault class degrades conservatively: zero staleness, and the
/// class's injections demonstrably fired somewhere in the batch (a fault
/// plan that never fires tests nothing). Runs under the Exact policy so
/// polling — the only site poll faults can hit — actually happens.
#[cfg(not(feature = "canary"))]
#[test]
fn every_fault_class_fires_and_stays_fresh() {
    for class in ALL_CLASSES {
        let mut lost = 0u64;
        let mut dup = 0u64;
        let mut faulted = 0u64;
        let mut aborts = 0u64;
        let mut crashes = 0u64;
        let mut gaps = 0u64;
        let mut bus_drops = 0u64;
        let mut bus_dups = 0u64;
        let mut partitions = 0u64;
        let mut reboots = 0u64;
        for seed in 0..10u64 {
            let sc = Scenario::generate(seed)
                .with_policy_workers(0, if seed % 2 == 0 { 1 } else { 4 })
                .with_fault(class.spec(seed));
            let actions = gen_actions(&sc, 50);
            let outcome = run_scenario(&sc, &actions);
            assert!(
                outcome.violation.is_none(),
                "class {} seed {seed}: {}",
                class.as_str(),
                outcome.violation.unwrap()
            );
            lost += outcome.stats.records_lost;
            dup += outcome.stats.records_duplicated;
            faulted += outcome.stats.polls_faulted;
            aborts += outcome.stats.txn_aborts;
            crashes += outcome.stats.crashes;
            gaps += outcome.stats.gap_ejected;
            bus_drops += outcome.stats.bus_drops;
            bus_dups += outcome.stats.bus_dups;
            partitions += outcome.stats.edge_partitions;
            reboots += outcome.stats.edge_reboots;
        }
        match class {
            FaultClass::None => {
                assert_eq!(lost + dup + faulted + aborts, 0, "inert class injected something")
            }
            FaultClass::SnifferDrop => assert!(lost > 0, "drop class never dropped"),
            FaultClass::SnifferDup => assert!(dup > 0, "dup class never duplicated"),
            // Reordering has no counter (it permutes, it does not count);
            // the zero-staleness assertion above is the whole check.
            FaultClass::SnifferReorder => {}
            FaultClass::PollError | FaultClass::PollTimeout => {
                assert!(faulted > 0, "{} class never faulted a poll", class.as_str())
            }
            FaultClass::TxnAbort => assert!(aborts > 0, "abort class never aborted"),
            FaultClass::Mixed => assert!(
                lost > 0 && faulted > 0 && aborts > 0,
                "mixed class must hit every site (lost={lost} faulted={faulted} aborts={aborts})"
            ),
            FaultClass::CrashRestart => assert!(
                crashes > 0 && gaps > 0,
                "crash class must crash and force gap ejects (crashes={crashes} gaps={gaps})"
            ),
            FaultClass::PollFlap => assert!(
                faulted > 0,
                "flap class never faulted a poll in a burst window"
            ),
            FaultClass::BusDrop => assert!(bus_drops > 0, "bus-drop class never dropped a delivery"),
            FaultClass::BusReorder => assert!(
                bus_drops > 0 && bus_dups > 0,
                "bus-reorder class must drop and duplicate (drops={bus_drops} dups={bus_dups})"
            ),
            FaultClass::EdgePartition => assert!(
                partitions > 0,
                "edge-partition class never partitioned an edge"
            ),
            FaultClass::EdgeCrashRejoin => assert!(
                reboots > 0,
                "edge-crash-rejoin class never rebooted an edge"
            ),
        }
    }
}

/// Reproducer files are self-contained and replay deterministically: the
/// JSON round-trips losslessly and two runs of the same trace produce the
/// identical outcome (stats and all), including with 4 analysis workers.
#[test]
fn reproducer_roundtrip_and_determinism() {
    let sc = Scenario::generate(7)
        .with_policy_workers(0, 4)
        .with_fault(FaultClass::Mixed.spec(7));
    let actions = gen_actions(&sc, 60);

    let repro = Reproducer {
        version: cacheportal_harness::repro::REPRO_VERSION,
        scenario: sc.clone(),
        actions: actions.clone(),
        violation: String::new(),
    };
    let parsed = Reproducer::from_json(&repro.to_json()).unwrap();
    assert_eq!(parsed, repro, "JSON round-trip must be lossless");

    let a = run_scenario(&sc, &actions);
    let b = parsed.replay();
    assert_eq!(a, b, "replay must be bit-deterministic");

    // Version gate: a future-format file is rejected, not misread.
    let future = repro.to_json().replacen("\"version\": 1", "\"version\": 99", 1);
    assert!(Reproducer::from_json(&future).is_err());
}

/// The harness catches a deliberately broken invalidator (the feature-gated
/// canary drops every other affected instance) and produces a replayable,
/// shrunk reproducer. Run via `cargo test -p cacheportal-harness
/// --features canary`.
#[cfg(feature = "canary")]
#[test]
fn canary_is_caught_and_shrunk_reproducer_replays() {
    let cfg = SweepConfig {
        seeds: 50,
        actions: 40,
        classes: vec![FaultClass::None],
    };
    let outcome = sweep(&cfg, None);
    let repro = outcome
        .failure
        .expect("a broken invalidator must be caught by the smoke matrix");
    assert!(
        repro.violation.contains("stale-page"),
        "the canary's symptom is staleness: {}",
        repro.violation
    );
    let original = gen_actions(&repro.scenario, cfg.actions);
    assert!(
        repro.actions.len() <= original.len(),
        "shrinking may never grow the trace"
    );
    let replayed = repro.replay();
    assert!(
        replayed.violation.is_some(),
        "the shrunk reproducer must still reproduce"
    );
}

//! Drive a scenario's action stream through a full [`CachePortal`] while a
//! shadow always-recompute oracle checks the safety contract.
//!
//! The oracle is [`CachePortal::stale_pages`]: after *every* synchronization
//! point it regenerates each cached page and compares bodies — the paper's
//! contract says the difference must be empty. The runner additionally
//! cross-checks the observability surfaces (fault counters may only be
//! non-zero when the plan can fire; sync counters must agree with the
//! actions driven) and accounts over-invalidation so precision per policy
//! and per fault class is reported, not just asserted away.

use crate::actions::{Action, Stmt};
use crate::gen::{policy_of, Scenario};
use cacheportal::db::{DbError, FaultPlan};
use cacheportal::web::{shared, SharedDb};
use cacheportal::{CachePortal, Served};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A violated invariant: the index of the action that exposed it plus a
/// machine-stable kind and a human-readable detail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Index into the action trace (`usize::MAX` = the final audit).
    pub action_index: usize,
    /// Stable kind: `stale-page`, `workload-error`, `metrics-incoherent`.
    pub kind: String,
    /// What exactly went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.action_index == usize::MAX {
            write!(f, "[{}] at final audit: {}", self.kind, self.detail)
        } else {
            write!(f, "[{}] at action {}: {}", self.kind, self.action_index, self.detail)
        }
    }
}

/// Aggregated run accounting (precision inputs for the soak report).
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Requests served.
    pub requests: u64,
    /// Requests answered from the page cache.
    pub cache_hits: u64,
    /// Synchronization points driven (incl. the final audit sync).
    pub syncs: u64,
    /// Pages actually ejected from the cache.
    pub ejected: u64,
    /// Ejects that were pure over-invalidation (page was not stale).
    pub over_invalidations: u64,
    /// Pages ejected conservatively because the sniffer lost records.
    pub fault_ejected: u64,
    /// Polling queries failed by the fault plan.
    pub polls_faulted: u64,
    /// Query-log records dropped by the fault plan.
    pub records_lost: u64,
    /// Query-log records duplicated by the fault plan.
    pub records_duplicated: u64,
    /// Transaction statements aborted by the fault plan.
    pub txn_aborts: u64,
    /// Portal crashes injected by the fault plan (crash-restart class).
    pub crashes: u64,
    /// Pages conservatively ejected at recovery because they were admitted
    /// in the durability gap.
    pub gap_ejected: u64,
    /// Bus deliveries dropped by the fault plan.
    pub bus_drops: u64,
    /// Bus deliveries duplicated by the fault plan.
    pub bus_dups: u64,
    /// Edge partition probes fired by the fault plan.
    pub edge_partitions: u64,
    /// Edge crash-and-rejoin events driven by the runner.
    pub edge_reboots: u64,
    /// Edge self-ejections under degraded mode (Vcache-style fallback).
    pub edge_self_ejections: u64,
}

/// Outcome of one run: accounting plus the first violated invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Aggregated accounting.
    pub stats: RunStats,
    /// First violation, if the run failed.
    pub violation: Option<Violation>,
    /// Black-box flight record captured at the violation (rendered
    /// `stable=1` bundle, so replays of the same trace produce the same
    /// bytes and `PartialEq` still holds). `None` on clean runs.
    pub flight_record: Option<String>,
}

impl RunOutcome {
    fn fail(stats: RunStats, action_index: usize, kind: &str, detail: String) -> RunOutcome {
        RunOutcome {
            stats,
            violation: Some(Violation {
                action_index,
                kind: kind.to_string(),
                detail,
            }),
            flight_record: None,
        }
    }

    /// Attach the portal's black box to a failed outcome: the byte-stable
    /// bundle rendering, captured while the rings still cover the violation
    /// window. A clean outcome passes through untouched.
    fn with_flight_record(mut self, portal: &CachePortal) -> RunOutcome {
        if let Some(v) = &self.violation {
            let bundle = portal.flight_record(&format!("harness:{}", v.kind), true);
            self.flight_record = serde_json::to_string_pretty(&bundle).ok();
        }
        self
    }
}

/// Apply one mutation statement; injected aborts are expected, anything
/// else is a workload error.
fn apply_stmt(portal: &CachePortal, sc: &Scenario, s: &Stmt) -> Result<(), String> {
    match portal.update(&s.sql(sc)) {
        Ok(_) | Err(DbError::Faulted(_)) => Ok(()),
        Err(e) => Err(format!("{} failed: {e}", s.sql(sc))),
    }
}

/// Per-incarnation observability counters accumulated across crashes: each
/// recovered portal starts a fresh metrics registry, so the end-of-run
/// cross-checks compare `base + current` against what the runner drove.
#[derive(Default)]
struct CounterBases {
    sync_points: u64,
    pages_ejected: u64,
    records_lost: u64,
    fault_ejected: u64,
    over_invalidations: u64,
    polls_faulted: u64,
    gap_ejected: u64,
}

impl CounterBases {
    fn fold(&mut self, portal: &CachePortal) {
        let m = &portal.obs().metrics;
        self.sync_points += m.counter_value("invalidator.sync_points");
        self.pages_ejected += m.counter_value("invalidator.pages.ejected");
        self.records_lost += m.counter_value("sniffer.records.lost");
        self.fault_ejected += m.counter_value("core.fault.ejected_conservative");
        self.over_invalidations += m.counter_value("invalidator.over_invalidations");
        self.polls_faulted += m.counter_value("invalidator.polls.faulted");
        self.gap_ejected += m.counter_value("durable.recovery.gap_ejected");
    }
}

/// Crash-mode context: the pieces that survive a portal crash — the shared
/// DBMS, the durable journal directory, and the fault plan (whose counters
/// are shared by every portal incarnation).
struct CrashCtx {
    db: SharedDb,
    dir: PathBuf,
    plan: FaultPlan,
}

/// Removes the run's durable scratch directory on every exit path.
struct DirCleanup(Option<PathBuf>);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        if let Some(d) = self.0.take() {
            let _ = std::fs::remove_dir_all(d);
        }
    }
}

static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Run the scenario's action stream end to end. Deterministic: the same
/// scenario and actions always produce the same [`RunOutcome`].
pub fn run_scenario(sc: &Scenario, actions: &[Action]) -> RunOutcome {
    let crash_ctx = if sc.fault.crash_restart > 0.0 {
        let dir = std::env::temp_dir().join(format!(
            "cp-harness-crash-{}-{}",
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Some(CrashCtx {
            db: shared(sc.build_database()),
            dir,
            plan: FaultPlan::new(sc.fault.clone()),
        })
    } else {
        None
    };
    let _cleanup = DirCleanup(crash_ctx.as_ref().map(|c| c.dir.clone()));
    let mut portal = match &crash_ctx {
        Some(c) => sc.build_portal_durable(c.db.clone(), &c.dir, c.plan.clone()),
        None => sc.build_portal(),
    };
    portal.set_invalidation_audit(true);
    let fault_active = portal.fault_plan().is_active();
    let mut stats = RunStats::default();
    let mut bases = CounterBases::default();

    let sync = |portal: &CachePortal, stats: &mut RunStats, idx: usize| -> Option<Violation> {
        let report = match portal.sync_point() {
            Ok(r) => r,
            Err(e) => {
                return Some(Violation {
                    action_index: idx,
                    kind: "workload-error".into(),
                    detail: format!("sync point failed: {e}"),
                })
            }
        };
        stats.syncs += 1;
        stats.ejected += report.ejected as u64;
        stats.fault_ejected += report.fault_ejected as u64;
        // THE safety contract: no cached page differs from regeneration.
        let stale = portal.stale_pages();
        if !stale.is_empty() {
            let urls: Vec<&str> = stale.iter().map(|k| k.as_str()).collect();
            return Some(Violation {
                action_index: idx,
                kind: "stale-page".into(),
                detail: format!("stale after sync under {:?}: {urls:?}", policy_of(sc.policy)),
            });
        }
        // Partition-tolerant degradation contract: after the sync's bus
        // delivery round every attached edge is either fully caught up or
        // empty (degraded edges self-ejected Vcache-style and decline
        // admission). An edge holding pages while behind the latest batch
        // is an open staleness window even if the oracle above happened to
        // find every body still fresh.
        let latest = portal.bus().latest_seq();
        for ep in portal.bus().endpoints() {
            if ep.applied_seq() < latest && !ep.cache().is_empty() {
                return Some(Violation {
                    action_index: idx,
                    kind: "bus-degradation".into(),
                    detail: format!(
                        "edge {} applied seq {} < latest {} but still holds {} page(s)",
                        ep.name(),
                        ep.applied_seq(),
                        latest,
                        ep.cache().len()
                    ),
                });
            }
        }
        // Index soundness: the scenario runs with index-vs-scan
        // differential mode on, so any sync where the predicate index and
        // the full scan disagree on the affected (type, params) set is a
        // correctness bug in the index, caught at the sync that diverged.
        if report.invalidation.index_divergences > 0 {
            return Some(Violation {
                action_index: idx,
                kind: "index-divergent".into(),
                detail: format!(
                    "predicate index and scan disagreed on {} affected instance(s)",
                    report.invalidation.index_divergences
                ),
            });
        }
        // Conservative degradation only: an inert plan must show zero fault
        // effects anywhere on the sync report.
        if !fault_active
            && (report.mapper.lost > 0
                || report.invalidation.poll_faults > 0
                || report.fault_ejected > 0)
        {
            return Some(Violation {
                action_index: idx,
                kind: "metrics-incoherent".into(),
                detail: format!(
                    "inert fault plan but lost={} poll_faults={} fault_ejected={}",
                    report.mapper.lost, report.invalidation.poll_faults, report.fault_ejected
                ),
            });
        }
        None
    };

    for (idx, action) in actions.iter().enumerate() {
        // Crash-restart: kill the portal (its in-memory sniffer logs,
        // invalidator, and metrics die with it), then recover from the
        // durable journal with the surviving DBMS and page cache.
        if let Some(c) = &crash_ctx {
            if c.plan.crash_before_action(idx as u64) {
                stats.crashes += 1;
                bases.fold(&portal);
                let cache = portal.page_cache().clone();
                drop(portal);
                portal = sc.recover_portal(c.db.clone(), cache, &c.dir, c.plan.clone());
                portal.set_invalidation_audit(true);
            }
        }
        // Edge crash-rejoin: an edge cache dies and rejoins from the bus's
        // acked watermark — the endpoint conservatively flushes everything
        // admitted past the mark before serving again.
        if sc.fault.edge_crash > 0.0 {
            for e in 0..portal.bus().edge_count() {
                if portal.fault_plan().edge_crash_before_action(idx as u64, e as u64) {
                    stats.edge_reboots += 1;
                    portal.reboot_bus_edge(e);
                }
            }
        }
        match action {
            Action::Request(s, g) => {
                let out = portal.request(&sc.request(*s, *g));
                stats.requests += 1;
                if out.served == Served::CacheHit {
                    stats.cache_hits += 1;
                }
                if out.response.status.code() != 200 {
                    return RunOutcome::fail(
                        stats,
                        idx,
                        "workload-error",
                        format!("request {:?} returned {}", action, out.response.status.code()),
                    )
                    .with_flight_record(&portal);
                }
            }
            Action::Mutate(s) => {
                if let Err(detail) = apply_stmt(&portal, sc, s) {
                    return RunOutcome::fail(stats, idx, "workload-error", detail)
                        .with_flight_record(&portal);
                }
            }
            Action::Txn(stmts) => {
                let r = portal.update_txn(|tx| {
                    for s in stmts {
                        tx.execute(&s.sql(sc))?;
                    }
                    Ok(())
                });
                match r {
                    Ok(()) => {}
                    // Injected mid-stream abort: the rollback must be
                    // invisible — checked by the oracle at the next sync.
                    Err(DbError::Faulted(_)) => {}
                    Err(e) => {
                        return RunOutcome::fail(
                            stats,
                            idx,
                            "workload-error",
                            format!("transaction failed: {e}"),
                        )
                        .with_flight_record(&portal)
                    }
                }
            }
            Action::Sync => {
                if let Some(v) = sync(&portal, &mut stats, idx) {
                    return RunOutcome { stats, violation: Some(v), flight_record: None }
                        .with_flight_record(&portal);
                }
            }
            Action::SetPolicy(p) => {
                let policy = policy_of(*p);
                portal.with_invalidator(|inv| {
                    inv.config_mut().policy.default_policy = policy;
                    let ids: Vec<_> = inv.registry().types().iter().map(|t| t.id).collect();
                    for id in ids {
                        inv.set_policy(id, policy);
                    }
                });
            }
        }
    }

    // Final audit: one more sync must always restore full freshness.
    if let Some(v) = sync(&portal, &mut stats, usize::MAX) {
        return RunOutcome { stats, violation: Some(v), flight_record: None }
            .with_flight_record(&portal);
    }

    // Fold the last incarnation's counters into the accumulated bases and
    // cross-check the observability surfaces against what the runner drove.
    // (In crash mode every recovered portal starts a fresh registry, so the
    // totals are base + last; the fault plan's counters are shared by all
    // incarnations and need no such accumulation.)
    bases.fold(&portal);
    stats.over_invalidations = bases.over_invalidations;
    stats.polls_faulted = bases.polls_faulted;
    stats.gap_ejected = bases.gap_ejected;
    let counts = portal.fault_plan().counts();
    stats.records_lost = counts.sniffer_dropped;
    stats.records_duplicated = counts.sniffer_duplicated;
    stats.txn_aborts = counts.txn_aborts;
    stats.bus_drops = counts.bus_dropped;
    stats.bus_dups = counts.bus_duplicated;
    stats.edge_partitions = counts.edge_partitions;
    stats.edge_self_ejections = portal.bus().stats().self_ejections;

    let mut incoherent = Vec::new();
    if bases.sync_points != stats.syncs {
        incoherent.push(format!(
            "sync_points counter {} != driven {}",
            bases.sync_points, stats.syncs
        ));
    }
    if bases.pages_ejected != stats.ejected {
        incoherent.push(format!(
            "pages.ejected counter {} != summed reports {}",
            bases.pages_ejected, stats.ejected
        ));
    }
    if bases.records_lost != counts.sniffer_dropped {
        incoherent.push(format!(
            "records.lost counter {} != injected drops {}",
            bases.records_lost, counts.sniffer_dropped
        ));
    }
    if bases.fault_ejected != stats.fault_ejected {
        incoherent.push(format!(
            "fault.ejected counter {} != summed reports {}",
            bases.fault_ejected, stats.fault_ejected
        ));
    }
    if stats.polls_faulted > 0
        && sc.fault.poll_error == 0.0
        && sc.fault.poll_timeout == 0.0
        && sc.fault.poll_flap_period == 0
    {
        incoherent.push(format!(
            "{} polls faulted under a plan with no poll faults",
            stats.polls_faulted
        ));
    }
    if stats.crashes != counts.crashes {
        incoherent.push(format!(
            "runner drove {} crashes but the plan counted {}",
            stats.crashes, counts.crashes
        ));
    }
    if stats.gap_ejected > 0 && sc.fault.crash_restart == 0.0 {
        incoherent.push(format!(
            "{} recovery-gap ejects without a crash-restart plan",
            stats.gap_ejected
        ));
    }
    if (stats.bus_drops > 0 || stats.bus_dups > 0)
        && sc.fault.bus_drop == 0.0
        && sc.fault.bus_dup == 0.0
    {
        incoherent.push(format!(
            "bus dropped {} / duplicated {} deliveries under a plan with no bus faults",
            stats.bus_drops, stats.bus_dups
        ));
    }
    if stats.edge_partitions > 0 && sc.fault.edge_partition == 0.0 {
        incoherent.push(format!(
            "{} edge partition probes fired under a plan with no partition faults",
            stats.edge_partitions
        ));
    }
    if stats.edge_reboots != counts.edge_crashes {
        incoherent.push(format!(
            "runner drove {} edge reboots but the plan counted {}",
            stats.edge_reboots, counts.edge_crashes
        ));
    }
    if !incoherent.is_empty() {
        return RunOutcome::fail(stats, usize::MAX, "metrics-incoherent", incoherent.join("; "))
            .with_flight_record(&portal);
    }

    // Causal-trace coherence: every traced eject must walk back to its
    // sync-point phase and to commit trace roots covering its LSN range.
    // Skipped after crash-restarts (commits before a crash rooted their
    // traces in the dead incarnation, so the chain legitimately breaks) —
    // and the check itself degrades to a no-op when any bounded ring
    // dropped entries (truncation, not incoherence).
    if stats.crashes == 0 {
        if let Err(detail) = portal.verify_causal_chains() {
            return RunOutcome::fail(stats, usize::MAX, "trace-incoherent", detail)
                .with_flight_record(&portal);
        }
    }

    RunOutcome { stats, violation: None, flight_record: None }
}

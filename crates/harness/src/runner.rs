//! Drive a scenario's action stream through a full [`CachePortal`] while a
//! shadow always-recompute oracle checks the safety contract.
//!
//! The oracle is [`CachePortal::stale_pages`]: after *every* synchronization
//! point it regenerates each cached page and compares bodies — the paper's
//! contract says the difference must be empty. The runner additionally
//! cross-checks the observability surfaces (fault counters may only be
//! non-zero when the plan can fire; sync counters must agree with the
//! actions driven) and accounts over-invalidation so precision per policy
//! and per fault class is reported, not just asserted away.

use crate::actions::{Action, Stmt};
use crate::gen::{policy_of, Scenario};
use cacheportal::db::DbError;
use cacheportal::{CachePortal, Served};
use serde::{Deserialize, Serialize};

/// A violated invariant: the index of the action that exposed it plus a
/// machine-stable kind and a human-readable detail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Index into the action trace (`usize::MAX` = the final audit).
    pub action_index: usize,
    /// Stable kind: `stale-page`, `workload-error`, `metrics-incoherent`.
    pub kind: String,
    /// What exactly went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.action_index == usize::MAX {
            write!(f, "[{}] at final audit: {}", self.kind, self.detail)
        } else {
            write!(f, "[{}] at action {}: {}", self.kind, self.action_index, self.detail)
        }
    }
}

/// Aggregated run accounting (precision inputs for the soak report).
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Requests served.
    pub requests: u64,
    /// Requests answered from the page cache.
    pub cache_hits: u64,
    /// Synchronization points driven (incl. the final audit sync).
    pub syncs: u64,
    /// Pages actually ejected from the cache.
    pub ejected: u64,
    /// Ejects that were pure over-invalidation (page was not stale).
    pub over_invalidations: u64,
    /// Pages ejected conservatively because the sniffer lost records.
    pub fault_ejected: u64,
    /// Polling queries failed by the fault plan.
    pub polls_faulted: u64,
    /// Query-log records dropped by the fault plan.
    pub records_lost: u64,
    /// Query-log records duplicated by the fault plan.
    pub records_duplicated: u64,
    /// Transaction statements aborted by the fault plan.
    pub txn_aborts: u64,
}

/// Outcome of one run: accounting plus the first violated invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Aggregated accounting.
    pub stats: RunStats,
    /// First violation, if the run failed.
    pub violation: Option<Violation>,
}

impl RunOutcome {
    fn fail(stats: RunStats, action_index: usize, kind: &str, detail: String) -> RunOutcome {
        RunOutcome {
            stats,
            violation: Some(Violation {
                action_index,
                kind: kind.to_string(),
                detail,
            }),
        }
    }
}

/// Apply one mutation statement; injected aborts are expected, anything
/// else is a workload error.
fn apply_stmt(portal: &CachePortal, sc: &Scenario, s: &Stmt) -> Result<(), String> {
    match portal.update(&s.sql(sc)) {
        Ok(_) | Err(DbError::Faulted(_)) => Ok(()),
        Err(e) => Err(format!("{} failed: {e}", s.sql(sc))),
    }
}

/// Run the scenario's action stream end to end. Deterministic: the same
/// scenario and actions always produce the same [`RunOutcome`].
pub fn run_scenario(sc: &Scenario, actions: &[Action]) -> RunOutcome {
    let portal = sc.build_portal();
    portal.set_invalidation_audit(true);
    let fault_active = portal.fault_plan().is_active();
    let mut stats = RunStats::default();

    let sync = |portal: &CachePortal, stats: &mut RunStats, idx: usize| -> Option<Violation> {
        let report = match portal.sync_point() {
            Ok(r) => r,
            Err(e) => {
                return Some(Violation {
                    action_index: idx,
                    kind: "workload-error".into(),
                    detail: format!("sync point failed: {e}"),
                })
            }
        };
        stats.syncs += 1;
        stats.ejected += report.ejected as u64;
        stats.fault_ejected += report.fault_ejected as u64;
        // THE safety contract: no cached page differs from regeneration.
        let stale = portal.stale_pages();
        if !stale.is_empty() {
            let urls: Vec<&str> = stale.iter().map(|k| k.as_str()).collect();
            return Some(Violation {
                action_index: idx,
                kind: "stale-page".into(),
                detail: format!("stale after sync under {:?}: {urls:?}", policy_of(sc.policy)),
            });
        }
        // Conservative degradation only: an inert plan must show zero fault
        // effects anywhere on the sync report.
        if !fault_active
            && (report.mapper.lost > 0
                || report.invalidation.poll_faults > 0
                || report.fault_ejected > 0)
        {
            return Some(Violation {
                action_index: idx,
                kind: "metrics-incoherent".into(),
                detail: format!(
                    "inert fault plan but lost={} poll_faults={} fault_ejected={}",
                    report.mapper.lost, report.invalidation.poll_faults, report.fault_ejected
                ),
            });
        }
        None
    };

    for (idx, action) in actions.iter().enumerate() {
        match action {
            Action::Request(s, g) => {
                let out = portal.request(&sc.request(*s, *g));
                stats.requests += 1;
                if out.served == Served::CacheHit {
                    stats.cache_hits += 1;
                }
                if out.response.status.code() != 200 {
                    return RunOutcome::fail(
                        stats,
                        idx,
                        "workload-error",
                        format!("request {:?} returned {}", action, out.response.status.code()),
                    );
                }
            }
            Action::Mutate(s) => {
                if let Err(detail) = apply_stmt(&portal, sc, s) {
                    return RunOutcome::fail(stats, idx, "workload-error", detail);
                }
            }
            Action::Txn(stmts) => {
                let r = portal.update_txn(|tx| {
                    for s in stmts {
                        tx.execute(&s.sql(sc))?;
                    }
                    Ok(())
                });
                match r {
                    Ok(()) => {}
                    // Injected mid-stream abort: the rollback must be
                    // invisible — checked by the oracle at the next sync.
                    Err(DbError::Faulted(_)) => {}
                    Err(e) => {
                        return RunOutcome::fail(
                            stats,
                            idx,
                            "workload-error",
                            format!("transaction failed: {e}"),
                        )
                    }
                }
            }
            Action::Sync => {
                if let Some(v) = sync(&portal, &mut stats, idx) {
                    return RunOutcome { stats, violation: Some(v) };
                }
            }
            Action::SetPolicy(p) => {
                let policy = policy_of(*p);
                portal.with_invalidator(|inv| {
                    inv.config_mut().policy.default_policy = policy;
                    let ids: Vec<_> = inv.registry().types().iter().map(|t| t.id).collect();
                    for id in ids {
                        inv.set_policy(id, policy);
                    }
                });
            }
        }
    }

    // Final audit: one more sync must always restore full freshness.
    if let Some(v) = sync(&portal, &mut stats, usize::MAX) {
        return RunOutcome { stats, violation: Some(v) };
    }

    // Fold the portal's counters into the accounting and cross-check the
    // observability surfaces against what the runner drove.
    let m = &portal.obs().metrics;
    stats.over_invalidations = m.counter_value("invalidator.over_invalidations");
    stats.polls_faulted = m.counter_value("invalidator.polls.faulted");
    let counts = portal.fault_plan().counts();
    stats.records_lost = counts.sniffer_dropped;
    stats.records_duplicated = counts.sniffer_duplicated;
    stats.txn_aborts = counts.txn_aborts;

    let mut incoherent = Vec::new();
    if m.counter_value("invalidator.sync_points") != stats.syncs {
        incoherent.push(format!(
            "sync_points counter {} != driven {}",
            m.counter_value("invalidator.sync_points"),
            stats.syncs
        ));
    }
    if m.counter_value("invalidator.pages.ejected") != stats.ejected {
        incoherent.push(format!(
            "pages.ejected counter {} != summed reports {}",
            m.counter_value("invalidator.pages.ejected"),
            stats.ejected
        ));
    }
    if m.counter_value("sniffer.records.lost") != counts.sniffer_dropped {
        incoherent.push(format!(
            "records.lost counter {} != injected drops {}",
            m.counter_value("sniffer.records.lost"),
            counts.sniffer_dropped
        ));
    }
    if m.counter_value("core.fault.ejected_conservative") != stats.fault_ejected {
        incoherent.push(format!(
            "fault.ejected counter {} != summed reports {}",
            m.counter_value("core.fault.ejected_conservative"),
            stats.fault_ejected
        ));
    }
    if stats.polls_faulted > 0 && sc.fault.poll_error == 0.0 && sc.fault.poll_timeout == 0.0 {
        incoherent.push(format!(
            "{} polls faulted under a plan with no poll faults",
            stats.polls_faulted
        ));
    }
    if !incoherent.is_empty() {
        return RunOutcome::fail(stats, usize::MAX, "metrics-incoherent", incoherent.join("; "));
    }

    RunOutcome { stats, violation: None }
}

//! Trace minimization: once a run violates an invariant, cut the action
//! trace down to something a human can read before emitting the reproducer.
//!
//! Delta-debugging lite: chunked removal with halving granularity, then a
//! single-action sweep, then structural simplification of the survivors
//! (transactions shortened statement by statement). Every candidate is
//! re-run in full — the predicate is "still violates *some* invariant",
//! not byte-identical failure text, which keeps shrinking effective when
//! the minimal trace fails slightly differently than the original.

use crate::actions::Action;
use crate::gen::Scenario;
use crate::runner::run_scenario;

/// Cap on re-runs during shrinking so a pathological trace cannot stall CI.
const MAX_RUNS: usize = 400;

fn still_fails(sc: &Scenario, actions: &[Action], runs: &mut usize) -> bool {
    if *runs >= MAX_RUNS {
        return false;
    }
    *runs += 1;
    run_scenario(sc, actions).violation.is_some()
}

/// Shrink a failing trace. Returns the minimized trace (never empty unless
/// the empty trace itself fails) — callers should re-run it to obtain the
/// violation it reproduces.
pub fn shrink(sc: &Scenario, actions: &[Action]) -> Vec<Action> {
    let mut best: Vec<Action> = actions.to_vec();
    let mut runs = 0usize;

    // Phase 1: chunked removal, halving the chunk size each pass.
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 && runs < MAX_RUNS {
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            if !candidate.is_empty() && still_fails(sc, &candidate, &mut runs) {
                best = candidate; // keep the cut, retry same offset
            } else {
                i += chunk;
            }
            if runs >= MAX_RUNS {
                break;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Phase 2: shorten surviving transactions one statement at a time.
    let mut i = 0;
    while i < best.len() && runs < MAX_RUNS {
        if let Action::Txn(stmts) = &best[i] {
            let mut j = 0;
            let mut stmts = stmts.clone();
            while j < stmts.len() && stmts.len() > 1 && runs < MAX_RUNS {
                let mut shorter = stmts.clone();
                shorter.remove(j);
                let mut candidate = best.clone();
                candidate[i] = Action::Txn(shorter.clone());
                if still_fails(sc, &candidate, &mut runs) {
                    best = candidate;
                    stmts = shorter;
                } else {
                    j += 1;
                }
            }
        }
        i += 1;
    }

    best
}

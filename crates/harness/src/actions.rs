//! The interleaved action stream a fuzz run drives through a portal.
//!
//! Actions are fully serializable (they are the body of a reproducer file)
//! and deliberately low-level: indexes into the scenario's table/servlet
//! lists plus small integers, so a shrunk trace stays readable.

use crate::gen::{Scenario, GROUPS, KEYS};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One statement inside a generated transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Insert `(k, g, payload ordinal)` into table `idx`.
    Insert(usize, i64, i64, i64),
    /// Delete group `g` from table `idx`.
    Delete(usize, i64),
    /// Rewrite `v` for group `g` of table `idx` to payload ordinal `n`.
    Update(usize, i64, i64),
}

impl Stmt {
    /// Render against the scenario's schema.
    pub fn sql(&self, sc: &Scenario) -> String {
        let t = |i: usize| &sc.tables[i % sc.tables.len()];
        match self {
            Stmt::Insert(i, k, g, n) => t(*i).insert_sql(*k, *g, *n),
            Stmt::Delete(i, g) => t(*i).delete_sql(*g),
            Stmt::Update(i, g, n) => t(*i).update_sql(*g, *n),
        }
    }
}

/// One workload action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Request servlet `idx` for group `g` (serves from cache or generates).
    Request(usize, i64),
    /// One autocommit mutation.
    Mutate(Stmt),
    /// Multi-statement transaction (atomic: all or nothing).
    Txn(Vec<Stmt>),
    /// Run a synchronization point; the oracle fires right after.
    Sync,
    /// Flip the default invalidation policy — and every registered type's
    /// override — to policy code `p` (0 = Exact, 1 = Conservative,
    /// 2 = TableLevel).
    SetPolicy(u8),
}

fn gen_stmt(rng: &mut StdRng, n_tables: usize) -> Stmt {
    let i = rng.gen_range(0..n_tables);
    match rng.gen_range(0..4u8) {
        0 | 1 => Stmt::Insert(
            i,
            rng.gen_range(0..KEYS),
            rng.gen_range(0..GROUPS),
            rng.gen_range(0..50i64),
        ),
        2 => Stmt::Delete(i, rng.gen_range(0..GROUPS)),
        _ => Stmt::Update(i, rng.gen_range(0..GROUPS), rng.gen_range(0..50i64)),
    }
}

/// Generate `n` actions for the scenario, deterministically from its seed.
pub fn gen_actions(sc: &Scenario, n: usize) -> Vec<Action> {
    let mut rng = StdRng::seed_from_u64(sc.seed ^ 0xac71_0057_2ea3_0002);
    let n_tables = sc.tables.len();
    let n_servlets = sc.servlets.len();
    let mut actions = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = rng.gen_range(0..100u8);
        let action = if roll < 35 {
            Action::Request(rng.gen_range(0..n_servlets), rng.gen_range(0..GROUPS))
        } else if roll < 68 {
            Action::Mutate(gen_stmt(&mut rng, n_tables))
        } else if roll < 76 {
            let len = rng.gen_range(2..=4usize);
            Action::Txn((0..len).map(|_| gen_stmt(&mut rng, n_tables)).collect())
        } else if roll < 80 {
            Action::SetPolicy(rng.gen_range(0..3u8))
        } else {
            Action::Sync
        };
        actions.push(action);
    }
    actions
}

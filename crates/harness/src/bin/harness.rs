//! CLI for the fuzz harness.
//!
//! ```text
//! harness smoke [--seeds N] [--actions M] [--out DIR]
//! harness soak  [--seeds N] [--actions M] [--out DIR] [--class NAME] [--markdown]
//! harness replay <file.json>
//! harness slo-breach
//! ```
//!
//! `smoke` is the CI gate: the acceptance matrix (≥50 seeds × ≥40 actions,
//! all three policies, workers {1,4}, every fault class), exit 1 on any
//! violation with the shrunk reproducer written next to the working
//! directory (or `--out`). `soak` is the long-running variant that also
//! prints the precision-per-policy-per-fault-class table. `replay` re-runs
//! a reproducer file and reports whether the violation still reproduces.
//! `slo-breach` is the deterministic canary drill for the freshness SLO
//! pipeline: inject a breach, assert the burn-rate alert fires, `/healthz`
//! degrades and recovers, and the auto-captured flight record is coherent
//! and byte-stable.

use cacheportal_harness::{
    markdown_table, run_drill, sweep, FaultClass, Reproducer, SweepConfig, ALL_CLASSES,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: harness smoke [--seeds N] [--actions M] [--out DIR]\n\
         \x20      harness soak  [--seeds N] [--actions M] [--out DIR] [--class NAME] [--markdown]\n\
         \x20      harness replay <file.json>\n\
         \x20      harness slo-breach\n\
         fault classes: {}",
        ALL_CLASSES.map(|c| c.as_str()).join(", ")
    );
    ExitCode::from(2)
}

struct Opts {
    seeds: Option<u64>,
    actions: Option<usize>,
    out: PathBuf,
    class: Option<FaultClass>,
    markdown: bool,
}

fn parse_opts(args: &[String]) -> Option<Opts> {
    let mut opts = Opts {
        seeds: None,
        actions: None,
        out: PathBuf::from("."),
        class: None,
        markdown: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                opts.seeds = Some(args.get(i + 1)?.parse().ok()?);
                i += 2;
            }
            "--actions" => {
                opts.actions = Some(args.get(i + 1)?.parse().ok()?);
                i += 2;
            }
            "--out" => {
                opts.out = PathBuf::from(args.get(i + 1)?);
                i += 2;
            }
            "--class" => {
                opts.class = Some(FaultClass::parse(args.get(i + 1)?)?);
                i += 2;
            }
            "--markdown" => {
                opts.markdown = true;
                i += 1;
            }
            _ => return None,
        }
    }
    Some(opts)
}

fn run_sweep(opts: &Opts, defaults: SweepConfig, label: &str) -> ExitCode {
    let cfg = SweepConfig {
        seeds: opts.seeds.unwrap_or(defaults.seeds),
        actions: opts.actions.unwrap_or(defaults.actions),
        classes: match opts.class {
            Some(c) => vec![c],
            None => ALL_CLASSES.to_vec(),
        },
    };
    let total_actions = cfg.seeds as usize * cfg.actions;
    println!(
        "harness {label}: {} seeds x {} actions ({} total), classes: {}",
        cfg.seeds,
        cfg.actions,
        total_actions,
        cfg.classes.iter().map(|c| c.as_str()).collect::<Vec<_>>().join(",")
    );
    let outcome = sweep(&cfg, None);
    if let Some(repro) = outcome.failure {
        let path = opts
            .out
            .join(format!("harness-repro-seed{}.json", repro.scenario.seed));
        eprintln!("FAIL after {} clean runs: {}", outcome.runs, repro.violation);
        eprintln!(
            "shrunk to {} actions; reproducer: {}",
            repro.actions.len(),
            path.display()
        );
        if let Err(e) = std::fs::create_dir_all(&opts.out).and_then(|_| repro.save(&path)) {
            eprintln!("could not write reproducer: {e}");
        }
        // Replay the shrunk trace once more to capture the violation's
        // black box, written next to the reproducer so CI uploads both.
        if let Some(bundle) = repro.replay().flight_record {
            let fr_path = opts
                .out
                .join(format!("harness-repro-seed{}.flightrecord.json", repro.scenario.seed));
            match std::fs::write(&fr_path, bundle) {
                Ok(()) => eprintln!("flight record: {}", fr_path.display()),
                Err(e) => eprintln!("could not write flight record: {e}"),
            }
        }
        return ExitCode::FAILURE;
    }
    if opts.markdown {
        println!("\n{}", markdown_table(&outcome.cells));
    } else {
        for ((policy, class), agg) in &outcome.cells {
            let s = &agg.stats;
            println!(
                "  {policy:>12} / {class:<15} runs={:<3} syncs={:<5} ejected={:<5} \
                 over={:<4} fault_ejected={:<4} polls_faulted={:<4} lost={:<4} aborts={}",
                agg.runs,
                s.syncs,
                s.ejected,
                s.over_invalidations,
                s.fault_ejected,
                s.polls_faulted,
                s.records_lost,
                s.txn_aborts,
            );
        }
    }
    println!("OK: {} runs, zero staleness violations", outcome.runs);
    ExitCode::SUCCESS
}

fn replay(path: &str) -> ExitCode {
    let repro = match Reproducer::load(std::path::Path::new(path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying seed {} ({} tables, {} servlets, {} actions)\ncaptured violation: {}",
        repro.scenario.seed,
        repro.scenario.tables.len(),
        repro.scenario.servlets.len(),
        repro.actions.len(),
        repro.violation
    );
    let outcome = repro.replay();
    match outcome.violation {
        Some(v) => {
            println!("REPRODUCED: {v}");
            ExitCode::FAILURE
        }
        None => {
            println!("did NOT reproduce (fixed, or environment-dependent)");
            ExitCode::SUCCESS
        }
    }
}

fn slo_breach() -> ExitCode {
    println!("slo-breach drill: tight staleness objective, scripted breach + recovery");
    match run_drill() {
        Ok(r) => {
            println!(
                "OK: fired={} resolved={} auto_dumps={} chains_verified={} stable_bytes={}",
                r.fired, r.resolved, r.auto_dumps, r.chains_verified, r.stable_bytes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "smoke" | "--smoke" => match parse_opts(&args[1..]) {
            Some(opts) => run_sweep(&opts, SweepConfig::smoke(), "smoke"),
            None => usage(),
        },
        "soak" => match parse_opts(&args[1..]) {
            Some(opts) => run_sweep(
                &opts,
                SweepConfig {
                    seeds: 200,
                    actions: 120,
                    classes: ALL_CLASSES.to_vec(),
                },
                "soak",
            ),
            None => usage(),
        },
        "replay" => match args.get(1) {
            Some(path) if args.len() == 2 => replay(path),
            _ => usage(),
        },
        "slo-breach" => {
            if args.len() == 1 {
                slo_breach()
            } else {
                usage()
            }
        }
        _ => usage(),
    }
}

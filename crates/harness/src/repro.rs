//! Self-contained reproducer files: scenario + shrunk action trace +
//! the violation they reproduce, as JSON. A reproducer replays with
//! `harness replay <file>` — no generator, seed stream, or version
//! coupling; the file carries the full schema, servlets, fault plan, and
//! every action verbatim.

use crate::actions::Action;
use crate::gen::Scenario;
use crate::runner::{run_scenario, RunOutcome};
use crate::shrink::shrink;
use serde::{Deserialize, Serialize};

/// Format version (bump on any incompatible field change).
pub const REPRO_VERSION: u32 = 1;

/// Everything needed to replay a failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// Format version.
    pub version: u32,
    /// The full scenario (schema, servlets, policy, workers, fault plan).
    pub scenario: Scenario,
    /// The (shrunk) action trace.
    pub actions: Vec<Action>,
    /// Violation this trace reproduced when it was captured.
    pub violation: String,
}

impl Reproducer {
    /// Capture a failing run: shrink the trace and package it. Panics if
    /// the trace does not actually fail (a reproducer must reproduce).
    pub fn capture(sc: &Scenario, actions: &[Action]) -> Reproducer {
        let shrunk = shrink(sc, actions);
        let outcome = run_scenario(sc, &shrunk);
        let violation = outcome
            .violation
            .expect("capture() requires a failing trace")
            .to_string();
        Reproducer {
            version: REPRO_VERSION,
            scenario: sc.clone(),
            actions: shrunk,
            violation,
        }
    }

    /// Replay the trace and return the outcome.
    pub fn replay(&self) -> RunOutcome {
        run_scenario(&self.scenario, &self.actions)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reproducer serializes")
    }

    /// Parse from JSON, validating the format version.
    pub fn from_json(s: &str) -> Result<Reproducer, String> {
        let r: Reproducer = serde_json::from_str(s).map_err(|e| format!("bad reproducer: {e:?}"))?;
        if r.version != REPRO_VERSION {
            return Err(format!(
                "reproducer version {} unsupported (expected {REPRO_VERSION})",
                r.version
            ));
        }
        Ok(r)
    }

    /// Write to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from `path`.
    pub fn load(path: &std::path::Path) -> Result<Reproducer, String> {
        let s = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        Reproducer::from_json(&s)
    }
}

//! Generative differential fuzz harness for the CachePortal safety
//! contract.
//!
//! The paper's value proposition is one invariant — **after every
//! synchronization point, no cached page differs from a fresh
//! regeneration** (§4, Example 4.1) — and this crate exists to attack it:
//!
//! - [`gen`] generates random schemas (1–5 tables, mixed column types,
//!   optional maintained indexes), random query types (selects,
//!   projections, joins, multi-conjunct predicates, aggregates) and the
//!   servlets serving them.
//! - [`actions`] generates the interleaved action stream: requests,
//!   mutations, multi-statement transactions, sync points, and policy
//!   flips.
//! - [`runner`] drives the stream through a full [`CachePortal`]
//!   (`workers` 1..8) while the shadow always-recompute oracle
//!   ([`CachePortal::stale_pages`]) checks zero staleness after every sync
//!   point, and the observability surfaces are cross-checked for
//!   coherence.
//! - [`faults`] sweeps the fault taxonomy through the `FaultPlan` hooks —
//!   sniffer record loss/duplication/reordering, polling errors/timeouts,
//!   mid-stream transaction aborts — asserting the system degrades
//!   *conservatively*: faults may only over-invalidate, never leave a
//!   stale page.
//! - [`shrink`] + [`repro`] turn a failing run into a self-contained,
//!   shrunk reproducer file replayable with `harness replay <file>`.
//! - [`sweep`] is the smoke/soak matrix CI runs.
//!
//! [`CachePortal`]: cacheportal::CachePortal
//! [`CachePortal::stale_pages`]: cacheportal::CachePortal::stale_pages

pub mod actions;
pub mod faults;
pub mod gen;
pub mod repro;
pub mod runner;
pub mod shrink;
pub mod slo_breach;
pub mod sweep;

pub use actions::{gen_actions, Action, Stmt};
pub use faults::{FaultClass, ALL_CLASSES};
pub use gen::{Scenario, ServletGen, ServletKind, TableGen};
pub use repro::Reproducer;
pub use runner::{run_scenario, RunOutcome, RunStats, Violation};
pub use shrink::shrink;
pub use slo_breach::{run_drill, DrillReport};
pub use sweep::{markdown_table, sweep, sweep_scenario, SweepConfig, SweepOutcome};

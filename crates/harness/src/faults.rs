//! The fault taxonomy the harness sweeps: every injection site the
//! [`FaultPlan`](cacheportal::db::FaultPlan) hooks, one class per site,
//! plus a mixed class firing all of them at once.

use cacheportal::db::FaultSpec;

/// One fault class (what the smoke matrix and the soak report pivot on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Inert plan — the baseline.
    None,
    /// Sniffer drops query-log records.
    SnifferDrop,
    /// Sniffer duplicates query-log records.
    SnifferDup,
    /// Sniffer reorders each drained batch.
    SnifferReorder,
    /// Polling queries fail with an error.
    PollError,
    /// Polling queries time out.
    PollTimeout,
    /// Transactions abort mid-stream.
    TxnAbort,
    /// All of the above at once.
    Mixed,
    /// The portal crashes at random actions and recovers from its durable
    /// journal (shared DBMS and page cache survive the crash).
    CrashRestart,
    /// Bursty poll failures: every poll in a burst window fails, tripping
    /// the per-query-type circuit breaker, then the window closes and the
    /// breaker re-probes its way shut.
    PollFlap,
    /// The invalidation bus drops eject deliveries to edge caches; bounded
    /// retries within the round must keep every edge renewed or degraded.
    BusDrop,
    /// The bus duplicates and reorders deliveries; idempotent apply and the
    /// gap buffer must absorb both.
    BusReorder,
    /// Bursty edge partitions: whole windows where an edge is unreachable —
    /// the edge must self-eject (Vcache-style) and catch up on heal.
    EdgePartition,
    /// Edge caches crash and rejoin from the bus's acked watermark, flushing
    /// pages admitted past the mark.
    EdgeCrashRejoin,
}

/// Every class, in sweep order.
pub const ALL_CLASSES: [FaultClass; 14] = [
    FaultClass::None,
    FaultClass::SnifferDrop,
    FaultClass::SnifferDup,
    FaultClass::SnifferReorder,
    FaultClass::PollError,
    FaultClass::PollTimeout,
    FaultClass::TxnAbort,
    FaultClass::Mixed,
    FaultClass::CrashRestart,
    FaultClass::PollFlap,
    FaultClass::BusDrop,
    FaultClass::BusReorder,
    FaultClass::EdgePartition,
    FaultClass::EdgeCrashRejoin,
];

impl FaultClass {
    /// Stable kebab-case name (report keys, CLI argument).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::SnifferDrop => "sniffer-drop",
            FaultClass::SnifferDup => "sniffer-dup",
            FaultClass::SnifferReorder => "sniffer-reorder",
            FaultClass::PollError => "poll-error",
            FaultClass::PollTimeout => "poll-timeout",
            FaultClass::TxnAbort => "txn-abort",
            FaultClass::Mixed => "mixed",
            FaultClass::CrashRestart => "crash-restart",
            FaultClass::PollFlap => "poll-flap",
            FaultClass::BusDrop => "bus-drop",
            FaultClass::BusReorder => "bus-reorder",
            FaultClass::EdgePartition => "edge-partition",
            FaultClass::EdgeCrashRejoin => "edge-crash-rejoin",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<FaultClass> {
        ALL_CLASSES.iter().copied().find(|c| c.as_str() == s)
    }

    /// The concrete plan for this class, seeded for determinism. The rates
    /// are moderate on purpose — high enough to fire on a 40-action trace,
    /// low enough that the workload still exercises the normal paths.
    pub fn spec(&self, seed: u64) -> FaultSpec {
        let mut spec = FaultSpec {
            seed,
            ..FaultSpec::default()
        };
        match self {
            FaultClass::None => {}
            FaultClass::SnifferDrop => spec.sniffer_drop = 0.25,
            FaultClass::SnifferDup => spec.sniffer_dup = 0.25,
            FaultClass::SnifferReorder => spec.sniffer_reorder = true,
            FaultClass::PollError => spec.poll_error = 0.4,
            FaultClass::PollTimeout => spec.poll_timeout = 0.4,
            FaultClass::TxnAbort => spec.txn_abort = 0.35,
            FaultClass::Mixed => {
                spec.sniffer_drop = 0.15;
                spec.sniffer_dup = 0.1;
                spec.sniffer_reorder = true;
                spec.poll_error = 0.2;
                spec.poll_timeout = 0.1;
                spec.txn_abort = 0.2;
            }
            FaultClass::CrashRestart => spec.crash_restart = 0.08,
            FaultClass::PollFlap => {
                spec.poll_flap_period = 4;
                spec.poll_flap_burst = 2;
            }
            FaultClass::BusDrop => spec.bus_drop = 0.3,
            FaultClass::BusReorder => {
                spec.bus_reorder = true;
                spec.bus_drop = 0.15;
                spec.bus_dup = 0.2;
            }
            FaultClass::EdgePartition => {
                spec.edge_partition = 0.7;
                spec.edge_partition_period = 4;
                spec.edge_partition_burst = 2;
            }
            FaultClass::EdgeCrashRejoin => spec.edge_crash = 0.15,
        }
        spec
    }
}

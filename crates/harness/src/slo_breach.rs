//! Canary-style SLO-breach drill: deliberately violate the freshness
//! contract against a deterministically tight policy and prove the whole
//! alerting/black-box pipeline end to end — the burn-rate alert fires,
//! `/healthz` degrades to 503 with the canonical `slo-fast-burn` reason,
//! the flight recorder captures a bundle whose causal chains resolve
//! against its own trace section, the JSONL export carries the alert
//! transitions, and once the windows age out the alert resolves and
//! health recovers. Run twice from scratch, the `stable=1` bundle must be
//! byte-identical — the determinism contract that makes black boxes
//! diffable across machines.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::obs::{verify_flight_record, Objective, SloKind, SloPolicy};
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::CachePortal;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What the drill proved, for the CLI to print.
#[derive(Debug, Default, Clone)]
pub struct DrillReport {
    /// Alert transitions that fired during the breach.
    pub fired: u64,
    /// Alert transitions that resolved after the windows aged out.
    pub resolved: u64,
    /// Flight records captured automatically by the breach.
    pub auto_dumps: u64,
    /// Causal chains verified inside the captured bundle.
    pub chains_verified: u64,
    /// Size of the byte-stable bundle rendering.
    pub stable_bytes: usize,
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cp-slo-drill-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Any staleness window over 50 logical µs is a bad event — guaranteed to
/// breach under the scripted workload, guaranteed quiet under a clean one.
/// Deterministic objectives only, so the stable bundle tells the full story.
fn tight_policy() -> SloPolicy {
    SloPolicy {
        objectives: vec![
            Objective::new(SloKind::StalenessP99, 50, 0.99, true),
            Objective::new(SloKind::PollErrors, 0, 0.99, true),
        ],
        ..SloPolicy::default()
    }
}

fn build_portal(flight_dir: &std::path::Path) -> CachePortal {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)")
        .unwrap();
    let portal = CachePortal::builder(db)
        .slo_policy(tight_policy())
        .flight_dir(flight_dir.to_path_buf())
        .build()
        .expect("portal build");
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price FROM Car WHERE Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    )));
    portal
}

/// One cache-filling request + invalidating update + sync; with
/// `stale_micros > 0` the clock advances between commit and sync so the
/// closed staleness window measures that long.
fn cycle(portal: &CachePortal, price: &mut i64, stale_micros: u64) -> Result<(), String> {
    let req = HttpRequest::get("shop.example.com", "/carSearch", &[("maxprice", "30000")]);
    portal.request(&req);
    portal
        .update(&format!("INSERT INTO Car VALUES ('Kia','Rio',{price})"))
        .map_err(|e| format!("update failed: {e}"))?;
    *price += 1;
    if stale_micros > 0 {
        portal.advance_clock(stale_micros);
    }
    portal.sync_point().map_err(|e| format!("sync failed: {e}"))?;
    Ok(())
}

/// Clean baseline then four windows 100× over the objective.
fn run_breach(portal: &CachePortal) -> Result<(), String> {
    let mut price = 20_000i64;
    for _ in 0..8 {
        cycle(portal, &mut price, 0)?;
    }
    for _ in 0..4 {
        cycle(portal, &mut price, 5_000)?;
    }
    Ok(())
}

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("drill assertion failed: {what}"))
    }
}

/// Run the full drill. Every failure is a `Err(what)` rather than a panic
/// so the CLI exits nonzero with a message instead of a backtrace.
pub fn run_drill() -> Result<DrillReport, String> {
    let mut report = DrillReport::default();

    // Two identical portals, same scripted breach: their stable bundles
    // must match byte for byte.
    let mut stable_bundles: Vec<String> = Vec::new();
    let mut dirs = Vec::new();
    for _ in 0..2 {
        let dir = scratch_dir();
        let portal = build_portal(&dir);
        dirs.push(dir);
        check(
            portal.obs().health.snapshot().to_response().status == 200,
            "portal healthy at rest",
        )?;
        run_breach(&portal)?;
        let bundle = portal.flight_record("drill", true);
        stable_bundles
            .push(serde_json::to_string_pretty(&bundle).map_err(|e| format!("render: {e}"))?);
        if stable_bundles.len() == 2 {
            // Second portal: walk the whole contract on this instance.
            verify_contract(&portal, &mut report)?;
        }
    }
    check(
        stable_bundles[0] == stable_bundles[1],
        "stable=1 bundles byte-identical across identical runs",
    )?;
    report.stable_bytes = stable_bundles[0].len();
    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(report)
}

fn verify_contract(portal: &CachePortal, report: &mut DrillReport) -> Result<(), String> {
    // The breach fired the fast (page) pair and degraded /healthz.
    let (fast, slow) = portal.obs().slo.firing_counts();
    check(fast >= 1, "fast burn pair firing after breach")?;
    check(slow >= 1, "slow burn pair firing after breach")?;
    let resp = portal.obs().health.snapshot().to_response();
    check(resp.status == 503, "healthz 503 while fast burn fires")?;
    check(resp.body.contains("slo-fast-burn"), "healthz names slo-fast-burn")?;
    report.fired = portal
        .obs()
        .slo
        .alerts_recent(64)
        .iter()
        .filter(|a| a.state == "firing")
        .count() as u64;
    check(report.fired >= 2, "alert log recorded the firing transitions")?;

    // The black box flew itself and the bundle is self-resolving.
    report.auto_dumps = portal.obs().recorder.recorded();
    check(report.auto_dumps >= 1, "breach auto-captured a flight record")?;
    let bundle = portal
        .obs()
        .recorder
        .latest()
        .ok_or_else(|| "flight recorder ring holds the capture".to_string())?;
    check(
        bundle["schema"].as_str() == Some("cacheportal.flightrecord.v1"),
        "bundle carries the versioned schema marker",
    )?;
    report.chains_verified = verify_flight_record(&bundle)?;
    check(report.chains_verified > 0, "bundle-local causal chains verified")?;
    portal.verify_causal_chains().map_err(|e| format!("live chains: {e}"))?;

    // The JSONL export stream carries the alert transitions.
    let mut buf = Vec::new();
    portal.export_jsonl(&mut buf).map_err(|e| format!("export: {e}"))?;
    let jsonl = String::from_utf8_lossy(&buf);
    check(jsonl.contains("\"kind\":\"alert\""), "export carries alert lines")?;
    check(
        jsonl.contains("\"kind\":\"flightrecord\""),
        "export carries flight-record index lines",
    )?;

    // Age the windows past the 6h lookback, resume clean syncs: the alerts
    // resolve and health recovers to the exact healthy contract.
    portal.advance_clock(7 * 3600 * 1_000_000);
    let mut price = 90_000i64;
    for _ in 0..4 {
        cycle(portal, &mut price, 0)?;
    }
    let (fast, slow) = portal.obs().slo.firing_counts();
    check(fast == 0 && slow == 0, "alerts resolved after windows aged out")?;
    report.resolved = portal
        .obs()
        .slo
        .alerts_recent(64)
        .iter()
        .filter(|a| a.state == "resolved")
        .count() as u64;
    check(report.resolved >= 2, "alert log recorded the resolved transitions")?;
    let resp = portal.obs().health.snapshot().to_response();
    check(resp.status == 200 && resp.body == "ok\n", "healthz recovered to ok")?;
    Ok(())
}

//! Scenario generation: random schemas, query types, and servlet specs.
//!
//! A [`Scenario`] is everything about a fuzz run except the action stream:
//! 1–5 tables with mixed column types and optional maintained indexes,
//! 1–4 servlets whose queries range over single-table selects, projections,
//! joins, multi-conjunct predicates, aggregates, top-k (ORDER BY + LIMIT),
//! grouped aggregates, LIKE-prefix and IN-list shapes, an initial
//! invalidation policy, an invalidator worker count, and a fault plan. Scenarios are
//! fully serializable so a reproducer file is self-contained — replay never
//! depends on the generator staying bit-identical across versions.

use cacheportal::cache::{PageCache, PageCacheConfig};
use cacheportal::db::schema::ColType;
use cacheportal::db::{Database, FaultPlan, FaultSpec};
use cacheportal::invalidator::{InvalidationPolicy, InvalidatorConfig};
use cacheportal::web::{
    HttpRequest, ParamSource, QueryTemplate, Servlet, ServletSpec, SharedDb, SqlServlet,
};
use cacheportal::{CachePortal, CachePortalBuilder};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// Serializable stand-in for [`ColType`] (the db crate's enum does not
/// derive serde; the wire code is stable by construction).
pub const COL_INT: u8 = 0;
/// Float column code.
pub const COL_FLOAT: u8 = 1;
/// Text column code.
pub const COL_STR: u8 = 2;

/// Decode a wire column code.
pub fn col_type(code: u8) -> ColType {
    match code % 3 {
        COL_INT => ColType::Int,
        COL_FLOAT => ColType::Float,
        _ => ColType::Str,
    }
}

/// SQL type name for a wire column code.
fn col_sql(code: u8) -> &'static str {
    match code % 3 {
        COL_INT => "INT",
        COL_FLOAT => "FLOAT",
        _ => "TEXT",
    }
}

/// Render the `n`-th deterministic literal of a column type.
pub fn literal(code: u8, n: i64) -> String {
    match code % 3 {
        COL_INT => n.to_string(),
        COL_FLOAT => format!("{n}.25"),
        _ => format!("'s{n}'"),
    }
}

/// One generated table. Every table has the fixed backbone `k INT`
/// (join attribute), `g INT` (page-selection attribute), and `v` of a
/// random type; half also carry a second payload column `w`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableGen {
    /// Table name (`t0`..`t4`).
    pub name: String,
    /// Wire code of the `v` column's type.
    pub v_type: u8,
    /// Wire code of the optional `w` column's type.
    pub w_type: Option<u8>,
    /// Declare `INDEX(k)` on the table itself.
    pub indexed: bool,
    /// Maintain a join-attribute index on `k` inside the invalidator.
    pub maintained_index: bool,
}

impl TableGen {
    /// `CREATE TABLE` statement for this table.
    pub fn create_sql(&self) -> String {
        let mut cols = format!("k INT, g INT, v {}", col_sql(self.v_type));
        if let Some(w) = self.w_type {
            cols.push_str(&format!(", w {}", col_sql(w)));
        }
        if self.indexed {
            cols.push_str(", INDEX(k)");
        }
        format!("CREATE TABLE {} ({cols})", self.name)
    }

    /// `INSERT` statement for a row keyed `(k, g)` with payload ordinal `n`.
    pub fn insert_sql(&self, k: i64, g: i64, n: i64) -> String {
        let mut vals = format!("{k}, {g}, {}", literal(self.v_type, n));
        if let Some(w) = self.w_type {
            vals.push_str(&format!(", {}", literal(w, n + 1)));
        }
        format!("INSERT INTO {} VALUES ({vals})", self.name)
    }

    /// `UPDATE` statement rewriting `v` for one group.
    pub fn update_sql(&self, g: i64, n: i64) -> String {
        format!(
            "UPDATE {} SET v = {} WHERE g = {g}",
            self.name,
            literal(self.v_type, n)
        )
    }

    /// `DELETE` statement removing one group.
    pub fn delete_sql(&self, g: i64) -> String {
        format!("DELETE FROM {} WHERE g = {g}", self.name)
    }
}

/// Query shape behind one generated servlet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServletKind {
    /// Full-width single-table select: `WHERE g = $1`.
    Select(usize),
    /// Projection of a column subset of one table.
    Project(usize),
    /// Multi-conjunct single-table select: `WHERE g = $1 AND v < c`
    /// (generated only for tables whose `v` is an Int).
    SelectFiltered(usize, i64),
    /// Equi-join on `k` between two distinct tables, selected by the first
    /// table's `g`.
    Join(usize, usize),
    /// Join plus a residual conjunct `a.v < c` (first table's `v` is Int).
    JoinFiltered(usize, usize, i64),
    /// `COUNT(*), SUM(k)` over one table's group.
    Agg(usize),
    /// Top-k page: `ORDER BY v DESC LIMIT n` over one table's group —
    /// exercises the invalidator's boundary rule (ties included: `v`
    /// literals repeat, and ties must stay conservative).
    TopK(usize, usize),
    /// Grouped aggregate page: `g, COUNT(*), SUM(k) … GROUP BY g ORDER BY
    /// g` below a group threshold — exercises the value-preserving rule.
    AggGroup(usize),
    /// LIKE-prefix page over a TEXT `v` column: the request's `g` value is
    /// spliced into the pattern `s{g}%` — exercises the LikePrefix index
    /// tier (v literals are `s0`…`s49`, so `s1%` matches `s1`,`s10`…).
    Like(usize),
    /// IN-list page: `g IN ($1, c1, c2)` with two scenario-fixed extra
    /// groups — exercises the InSet index tier.
    InList(usize, i64, i64),
}

/// One generated servlet: a name and the query shape it serves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServletGen {
    /// Servlet (and URL path) name, `p0`..`p3`.
    pub name: String,
    /// The query shape.
    pub kind: ServletKind,
}

impl ServletGen {
    /// The parameterized SQL this servlet issues (`$1` = the `g` param).
    pub fn sql(&self, tables: &[TableGen]) -> String {
        match &self.kind {
            ServletKind::Select(i) => {
                let t = &tables[*i].name;
                format!("SELECT k, g, v FROM {t} WHERE g = $1 ORDER BY k, v")
            }
            ServletKind::Project(i) => {
                let t = &tables[*i].name;
                format!("SELECT v FROM {t} WHERE g = $1 ORDER BY v")
            }
            ServletKind::SelectFiltered(i, c) => {
                let t = &tables[*i].name;
                format!("SELECT k, v FROM {t} WHERE g = $1 AND v < {c} ORDER BY k, v")
            }
            ServletKind::Join(a, b) => {
                let (ta, tb) = (&tables[*a].name, &tables[*b].name);
                format!(
                    "SELECT {ta}.v, {tb}.v FROM {ta}, {tb} \
                     WHERE {ta}.k = {tb}.k AND {ta}.g = $1 ORDER BY {ta}.k"
                )
            }
            ServletKind::JoinFiltered(a, b, c) => {
                let (ta, tb) = (&tables[*a].name, &tables[*b].name);
                format!(
                    "SELECT {ta}.v, {tb}.v FROM {ta}, {tb} \
                     WHERE {ta}.k = {tb}.k AND {ta}.g = $1 AND {ta}.v < {c} \
                     ORDER BY {ta}.k"
                )
            }
            ServletKind::Agg(i) => {
                let t = &tables[*i].name;
                format!("SELECT COUNT(*), SUM(k) FROM {t} WHERE g = $1")
            }
            ServletKind::TopK(i, n) => {
                let t = &tables[*i].name;
                format!("SELECT k, g, v FROM {t} WHERE g = $1 ORDER BY v DESC LIMIT {n}")
            }
            ServletKind::AggGroup(i) => {
                let t = &tables[*i].name;
                format!(
                    "SELECT g, COUNT(*), SUM(k) FROM {t} WHERE g < $1 \
                     GROUP BY g ORDER BY g"
                )
            }
            ServletKind::Like(i) => {
                let t = &tables[*i].name;
                format!("SELECT k, g, v FROM {t} WHERE v LIKE $1 ORDER BY k, g, v")
            }
            ServletKind::InList(i, c1, c2) => {
                let t = &tables[*i].name;
                format!("SELECT k, v FROM {t} WHERE g IN ($1, {c1}, {c2}) ORDER BY k, v")
            }
        }
    }

    /// Instantiate the servlet for registration on a portal or cluster.
    pub fn build(&self, tables: &[TableGen]) -> Arc<dyn Servlet> {
        let params = match &self.kind {
            // The LIKE pattern carries the group ordinal as its literal
            // prefix; everything else binds `g` directly.
            ServletKind::Like(_) => {
                vec![ParamSource::GetPattern("g".into(), "s{}%".into())]
            }
            _ => vec![ParamSource::Get("g".into(), ColType::Int)],
        };
        Arc::new(SqlServlet::new(
            ServletSpec::new(&self.name).with_key_get_params(&["g"]),
            &format!("Fuzz page {}", self.name),
            vec![QueryTemplate::new(&self.sql(tables), params)],
        ))
    }
}

/// Everything about a fuzz run except the action stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Seed this scenario (and its initial rows) derive from.
    pub seed: u64,
    /// Generated tables, in creation order.
    pub tables: Vec<TableGen>,
    /// Generated servlets.
    pub servlets: Vec<ServletGen>,
    /// Initial default policy: 0 = Exact, 1 = Conservative, 2 = TableLevel.
    pub policy: u8,
    /// Invalidator analysis workers (1..8).
    pub workers: usize,
    /// Fault-injection plan (inert by default).
    pub fault: FaultSpec,
    /// Initial rows per table.
    pub initial_rows: usize,
}

/// Decode a policy code (used for the initial policy and for flip actions).
pub fn policy_of(code: u8) -> InvalidationPolicy {
    match code % 3 {
        0 => InvalidationPolicy::Exact,
        1 => InvalidationPolicy::Conservative,
        _ => InvalidationPolicy::TableLevel,
    }
}

/// Number of distinct `g` groups actions range over. Small on purpose:
/// collisions between cached pages and updates are the whole point.
pub const GROUPS: i64 = 6;
/// Number of distinct `k` join keys.
pub const KEYS: i64 = 8;
/// Edge caches attached behind the bus when the plan has bus fault sites.
pub const BUS_EDGES: usize = 2;

impl Scenario {
    /// Generate the scenario for `seed` (inert fault plan).
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce7_a810_c0ff_ee00);
        let n_tables = rng.gen_range(1..=5usize);
        let tables: Vec<TableGen> = (0..n_tables)
            .map(|i| TableGen {
                name: format!("t{i}"),
                v_type: rng.gen_range(0..3u8),
                w_type: if rng.gen_bool(0.5) {
                    Some(rng.gen_range(0..3u8))
                } else {
                    None
                },
                indexed: rng.gen_bool(0.5),
                maintained_index: rng.gen_bool(0.4),
            })
            .collect();

        let n_servlets = rng.gen_range(1..=4usize);
        let servlets: Vec<ServletGen> = (0..n_servlets)
            .map(|i| ServletGen {
                name: format!("p{i}"),
                kind: gen_kind(&mut rng, &tables),
            })
            .collect();

        Scenario {
            seed,
            tables,
            servlets,
            policy: rng.gen_range(0..3u8),
            workers: [1usize, 1, 2, 4, 8][rng.gen_range(0..5usize)],
            fault: FaultSpec::default(),
            initial_rows: rng.gen_range(0..30usize),
        }
    }

    /// Same scenario with a fault plan installed.
    pub fn with_fault(mut self, fault: FaultSpec) -> Scenario {
        self.fault = fault;
        self
    }

    /// Same scenario pinned to a policy and worker count (smoke-matrix use).
    pub fn with_policy_workers(mut self, policy: u8, workers: usize) -> Scenario {
        self.policy = policy % 3;
        self.workers = workers;
        self
    }

    /// Build and seed the database (tables + deterministic initial rows).
    pub fn build_database(&self) -> Database {
        let mut db = Database::new();
        for t in &self.tables {
            db.execute(&t.create_sql()).expect("generated CREATE TABLE must parse");
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0da7_a5ee_d000_0001);
        for _ in 0..self.initial_rows {
            let t = &self.tables[rng.gen_range(0..self.tables.len())];
            let (k, g, n) = (
                rng.gen_range(0..KEYS),
                rng.gen_range(0..GROUPS),
                rng.gen_range(0..50i64),
            );
            db.execute(&t.insert_sql(k, g, n)).expect("generated INSERT must parse");
        }
        db
    }

    /// Apply the scenario's policy, worker count, maintained indexes, and
    /// the given fault plan to a builder (shared by every assembly path).
    fn configure(&self, mut builder: CachePortalBuilder, plan: FaultPlan) -> CachePortalBuilder {
        let mut cfg = InvalidatorConfig::default();
        cfg.policy.default_policy = policy_of(self.policy);
        cfg.workers = self.workers;
        // Every harness run doubles as an index-vs-scan differential test:
        // the invalidator re-analyzes each sync with the predicate index
        // disabled and the runner flags any affected-set divergence.
        cfg.index_differential = true;
        builder = builder.invalidator_config(cfg).fault_plan(plan);
        for t in &self.tables {
            if t.maintained_index {
                builder = builder.maintain_index(&t.name, "k");
            }
        }
        builder
    }

    /// Register every generated servlet on a freshly assembled portal.
    fn register(&self, portal: &CachePortal) {
        for s in &self.servlets {
            portal.register_servlet(s.build(&self.tables));
        }
        self.attach_edges(portal);
    }

    /// Attach [`BUS_EDGES`] edge caches behind the invalidation bus — but
    /// only when the plan actually exercises bus fault sites, so every
    /// pre-existing fault class replays bit-identically without edges.
    /// Registration order is deterministic (`edge-0`, `edge-1`), which is
    /// what lets a recovered portal re-register edges under the same names
    /// the journaled watermarks were persisted against.
    fn attach_edges(&self, portal: &CachePortal) {
        if self.fault.has_bus_faults() {
            for _ in 0..BUS_EDGES {
                portal.register_edge_cache(Arc::new(PageCache::new(PageCacheConfig::default())));
            }
        }
    }

    /// Assemble the full portal: database, servlets, policy, workers, fault
    /// plan, and maintained indexes.
    pub fn build_portal(&self) -> CachePortal {
        let db = self.build_database();
        let portal = self
            .configure(CachePortal::builder(db), FaultPlan::new(self.fault.clone()))
            .build()
            .expect("generated scenario must assemble");
        self.register(&portal);
        portal
    }

    /// Crash-mode assembly: the database is shared (it outlives the portal,
    /// like a real DBMS outlives a crashed cache server) and the QI/URL map
    /// plus sync cursor are journaled to `dir` so the runner can kill the
    /// portal mid-trace and [`Scenario::recover_portal`] it.
    pub fn build_portal_durable(
        &self,
        db: SharedDb,
        dir: &Path,
        plan: FaultPlan,
    ) -> CachePortal {
        let portal = self
            .configure(CachePortal::builder_shared(db), plan)
            .durable(dir)
            .checkpoint_interval(3)
            .build()
            .expect("generated scenario must assemble");
        self.register(&portal);
        portal
    }

    /// Rebuild a crashed portal from its durable directory. The page cache
    /// is the surviving one (a cache tier outlives the portal process);
    /// recovery conservatively ejects anything admitted in the durability
    /// gap.
    pub fn recover_portal(
        &self,
        db: SharedDb,
        cache: Arc<PageCache>,
        dir: &Path,
        plan: FaultPlan,
    ) -> CachePortal {
        let portal = self
            .configure(CachePortal::builder_shared(db), plan)
            .durable(dir)
            .checkpoint_interval(3)
            .surviving_cache(cache)
            .recover()
            .expect("recovery from the durable journal must assemble");
        self.register(&portal);
        portal
    }

    /// The request hitting servlet `idx` (mod the servlet count) for group
    /// `g`.
    pub fn request(&self, idx: usize, g: i64) -> HttpRequest {
        let s = &self.servlets[idx % self.servlets.len()];
        HttpRequest::get("fuzz", &format!("/{}", s.name), &[("g", &g.to_string())])
    }
}

/// Pick one query shape over the generated tables.
fn gen_kind(rng: &mut StdRng, tables: &[TableGen]) -> ServletKind {
    let i = rng.gen_range(0..tables.len());
    let int_v = tables[i].v_type % 3 == COL_INT;
    let str_v = tables[i].v_type % 3 == COL_STR;
    let roll = rng.gen_range(0..10u8);
    match roll {
        0 => ServletKind::Select(i),
        1 => ServletKind::Project(i),
        2 if int_v => ServletKind::SelectFiltered(i, rng.gen_range(5..45i64)),
        3 | 4 if tables.len() > 1 => {
            let mut j = rng.gen_range(0..tables.len() - 1);
            if j >= i {
                j += 1; // distinct second table
            }
            if roll == 4 && int_v {
                ServletKind::JoinFiltered(i, j, rng.gen_range(5..45i64))
            } else {
                ServletKind::Join(i, j)
            }
        }
        5 => ServletKind::Agg(i),
        6 => ServletKind::TopK(i, rng.gen_range(1..4usize)),
        7 => ServletKind::AggGroup(i),
        8 if str_v => ServletKind::Like(i),
        9 => ServletKind::InList(i, rng.gen_range(0..GROUPS), rng.gen_range(0..GROUPS)),
        _ => ServletKind::Agg(i),
    }
}

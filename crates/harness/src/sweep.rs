//! The smoke/soak sweep: many seeds, all policies, workers 1 and 4, every
//! fault class — the matrix the acceptance criteria name. Shared between
//! the `harness` binary, `scripts/verify.sh`, and the crate's own tests.

use crate::actions::gen_actions;
use crate::faults::{FaultClass, ALL_CLASSES};
use crate::gen::{policy_of, Scenario};
use crate::repro::Reproducer;
use crate::runner::{run_scenario, RunStats};
use std::collections::BTreeMap;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of seeds (one full run each).
    pub seeds: u64,
    /// Actions per run.
    pub actions: usize,
    /// Fault classes to cycle through (seed-indexed).
    pub classes: Vec<FaultClass>,
}

impl SweepConfig {
    /// The CI smoke matrix: ≥50 seeds × ≥40 actions, cycling all three
    /// policies, workers {1, 4}, and every fault class.
    pub fn smoke() -> SweepConfig {
        SweepConfig {
            seeds: 50,
            actions: 40,
            classes: ALL_CLASSES.to_vec(),
        }
    }
}

/// Accounting for one (policy, fault-class) cell of the sweep.
#[derive(Debug, Default, Clone)]
pub struct CellAgg {
    /// Full runs aggregated into this cell.
    pub runs: u64,
    /// Actions driven.
    pub actions: u64,
    /// Folded run accounting.
    pub stats: RunStats,
}

impl CellAgg {
    fn fold(&mut self, actions: usize, s: &RunStats) {
        self.runs += 1;
        self.actions += actions as u64;
        self.stats.requests += s.requests;
        self.stats.cache_hits += s.cache_hits;
        self.stats.syncs += s.syncs;
        self.stats.ejected += s.ejected;
        self.stats.over_invalidations += s.over_invalidations;
        self.stats.fault_ejected += s.fault_ejected;
        self.stats.polls_faulted += s.polls_faulted;
        self.stats.records_lost += s.records_lost;
        self.stats.records_duplicated += s.records_duplicated;
        self.stats.txn_aborts += s.txn_aborts;
        self.stats.crashes += s.crashes;
        self.stats.gap_ejected += s.gap_ejected;
        self.stats.bus_drops += s.bus_drops;
        self.stats.bus_dups += s.bus_dups;
        self.stats.edge_partitions += s.edge_partitions;
        self.stats.edge_reboots += s.edge_reboots;
        self.stats.edge_self_ejections += s.edge_self_ejections;
    }
}

/// Sweep result: per-cell accounting, plus the shrunk reproducer for the
/// first failure (the sweep stops there — one good reproducer beats a pile
/// of correlated ones).
pub struct SweepOutcome {
    /// Completed runs.
    pub runs: u64,
    /// (policy name, fault class name) → accounting.
    pub cells: BTreeMap<(String, String), CellAgg>,
    /// First failure, already shrunk and packaged.
    pub failure: Option<Reproducer>,
}

/// The deterministic scenario for one sweep slot: policy, worker count, and
/// fault class all cycle with the seed so the matrix is covered evenly.
pub fn sweep_scenario(seed: u64, classes: &[FaultClass]) -> (Scenario, FaultClass) {
    let class = classes[(seed as usize) % classes.len()];
    let workers = if seed.is_multiple_of(2) { 1 } else { 4 };
    let sc = Scenario::generate(seed)
        .with_policy_workers((seed % 3) as u8, workers)
        .with_fault(class.spec(seed));
    (sc, class)
}

/// Run the sweep. `progress` (if given) is called after every run.
pub fn sweep(cfg: &SweepConfig, mut progress: Option<&mut dyn FnMut(u64)>) -> SweepOutcome {
    let mut cells: BTreeMap<(String, String), CellAgg> = BTreeMap::new();
    for seed in 0..cfg.seeds {
        let (sc, class) = sweep_scenario(seed, &cfg.classes);
        let actions = gen_actions(&sc, cfg.actions);
        let outcome = run_scenario(&sc, &actions);
        if outcome.violation.is_some() {
            return SweepOutcome {
                runs: seed,
                cells,
                failure: Some(Reproducer::capture(&sc, &actions)),
            };
        }
        let key = (
            policy_of(sc.policy).as_str().to_string(),
            class.as_str().to_string(),
        );
        cells.entry(key).or_default().fold(cfg.actions, &outcome.stats);
        if let Some(p) = progress.as_deref_mut() {
            p(seed + 1);
        }
    }
    SweepOutcome {
        runs: cfg.seeds,
        cells,
        failure: None,
    }
}

/// Render the per-cell precision table as GitHub markdown (the EXPERIMENTS
/// table is generated from this).
pub fn markdown_table(cells: &BTreeMap<(String, String), CellAgg>) -> String {
    let mut out = String::from(
        "| policy | fault class | runs | actions | syncs | ejected | over-inv | over-inv % | \
         fault-ejected | polls faulted | records lost | txn aborts | crashes | gap-ejected | \
         bus-drops | edge-partitions | edge-reboots | self-ejections |\n\
         |---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    for ((policy, class), agg) in cells {
        let s = &agg.stats;
        let pct = if s.ejected > 0 {
            format!("{:.1}", 100.0 * s.over_invalidations as f64 / s.ejected as f64)
        } else {
            "–".to_string()
        };
        out.push_str(&format!(
            "| {policy} | {class} | {} | {} | {} | {} | {} | {pct} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            agg.runs,
            agg.actions,
            s.syncs,
            s.ejected,
            s.over_invalidations,
            s.fault_ejected,
            s.polls_faulted,
            s.records_lost,
            s.txn_aborts,
            s.crashes,
            s.gap_ejected,
            s.bus_drops,
            s.edge_partitions,
            s.edge_reboots,
            s.edge_self_ejections,
        ));
    }
    out
}

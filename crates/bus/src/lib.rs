//! Networked invalidation bus: the central invalidator fans sequenced
//! eject batches out to N edge page caches with an explicit reliability
//! contract.
//!
//! * **Monotone sequencing** — every sync point publishes one
//!   [`EjectBatch`] with a bus-wide monotone `seq` (empty batches act as
//!   heartbeats, so an edge can always tell "nothing happened" from
//!   "I missed something").
//! * **At-least-once delivery** — [`InvalidationBus::deliver_all`] retries
//!   each edge with bounded attempts and deterministic (modeled, never
//!   slept) backoff; the transport may drop, duplicate, or fail
//!   deliveries.
//! * **Per-edge watermarks** — the bus tracks each edge's highest
//!   contiguously *acked* batch. Watermarks ride the durable journal via
//!   [`InvalidationBus::durable_marks`]/[`InvalidationBus::restore`], so a
//!   crashed-and-recovered invalidator never re-opens a staleness window.
//! * **Idempotent apply** — [`EdgeEndpoint::apply`] absorbs duplicates
//!   (`seq <= applied`) and buffers reorders in a gap buffer; the ack
//!   always carries the highest *contiguous* applied seq, so the bus
//!   retransmits exactly the missing prefix.
//! * **Partition-tolerant degradation** — an edge that cannot be renewed
//!   within its lease self-ejects (Vcache-style conservative flush: serve
//!   nothing cacheable rather than anything stale) and stops admitting
//!   pages; past a budget of failed rounds the bus marks it partitioned
//!   (a degraded `/healthz` reason). On heal, a watermark-driven catch-up
//!   replays the retained batches and admission resumes.
//!
//! Two transports implement [`BusTransport`]: the deterministic
//! [`MemoryTransport`] with `FaultPlan`-driven fault injection
//! (drop/dup/partition per edge), and the real-socket transport in
//! [`socket`] reusing the same std-TCP style as the `crates/obs` admin
//! server for CI smoke runs.
//!
//! The safety argument the harness oracle checks: after every sync point,
//! each in-process edge is either **fully caught up** (acked == latest
//! published seq) or **empty** (self-ejected) — in both states it cannot
//! serve a stale page.

pub mod socket;

use cacheportal_cache::PageCache;
use cacheportal_db::FaultPlan;
use cacheportal_web::clock::Micros;
use cacheportal_web::PageKey;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One sync point's eject message: the sequenced unit of bus delivery.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EjectBatch {
    /// Bus-wide monotone sequence number (starts at 1).
    pub seq: u64,
    /// The originating sync point's durable ordinal.
    pub sync_seq: u64,
    /// Logical timestamp of the originating sync point.
    pub ts: Micros,
    /// Pages to eject. May be empty (heartbeat: "nothing to eject, but
    /// the sequence advanced").
    pub pages: Vec<PageKey>,
}

/// The edge's reply to a delivery: its post-apply watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Ack {
    /// Highest batch seq applied *contiguously* at the edge. Anything
    /// above this (gap-buffered or never seen) must be retransmitted.
    pub applied_seq: u64,
}

/// Why a delivery attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The edge could not be reached (drop, partition, refused connect).
    Unreachable(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unreachable(why) => write!(f, "edge unreachable: {why}"),
        }
    }
}

/// How eject batches move from the bus to one edge. `deliver` is
/// synchronous: a successful return means the edge applied (or buffered)
/// the batch and the [`Ack`] is its current watermark.
pub trait BusTransport: Send + Sync {
    /// Deliver `batch` to edge `edge` (registration index). `attempt` is
    /// the retry ordinal within the current round (0 = first try) so
    /// fault injection can clear on retries.
    fn deliver(&self, edge: usize, batch: &EjectBatch, attempt: u32) -> Result<Ack, TransportError>;

    /// Hand the transport the in-process endpoint for `edge`. Remote
    /// transports (sockets) ignore this — their endpoint lives behind the
    /// wire.
    fn attach(&self, _edge: usize, _endpoint: Arc<EdgeEndpoint>) {}
}

/// Cumulative per-edge apply-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeCounters {
    /// Batches applied in order (including drains from the gap buffer).
    pub applied_batches: u64,
    /// Duplicate deliveries absorbed (`seq <= applied`).
    pub absorbed_duplicates: u64,
    /// Out-of-order batches parked in the gap buffer.
    pub buffered_gaps: u64,
    /// Pages actually removed by applied ejects.
    pub ejected_pages: u64,
    /// Times the edge entered degraded (self-ejection) mode.
    pub self_ejections: u64,
    /// Pages conservatively flushed (degradation, reboot, rebase).
    pub flushed_pages: u64,
}

struct EdgeInner {
    applied_seq: u64,
    pending: BTreeMap<u64, EjectBatch>,
    degraded: bool,
    counters: EdgeCounters,
}

/// The edge side of the bus: one page cache plus the idempotent-apply
/// state machine (watermark, gap buffer, degraded flag).
pub struct EdgeEndpoint {
    name: String,
    cache: Arc<PageCache>,
    inner: Mutex<EdgeInner>,
}

impl EdgeEndpoint {
    /// A fresh endpoint with watermark `applied_seq` (0 = nothing applied).
    pub fn new(name: impl Into<String>, cache: Arc<PageCache>, applied_seq: u64) -> EdgeEndpoint {
        EdgeEndpoint {
            name: name.into(),
            cache,
            inner: Mutex::new(EdgeInner {
                applied_seq,
                pending: BTreeMap::new(),
                degraded: false,
                counters: EdgeCounters::default(),
            }),
        }
    }

    /// The edge's name (durable watermark key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The edge's page cache.
    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// Idempotent apply: duplicates are absorbed, the next-in-sequence
    /// batch applies (and drains any contiguous run from the gap buffer),
    /// and an out-of-order batch parks in the gap buffer. The returned
    /// [`Ack`] is the highest contiguous applied seq — a gap keeps the
    /// ack low, which is what makes the bus retransmit the missing prefix.
    pub fn apply(&self, batch: &EjectBatch) -> Ack {
        let mut g = self.inner.lock();
        if batch.seq <= g.applied_seq {
            g.counters.absorbed_duplicates += 1;
            return Ack { applied_seq: g.applied_seq };
        }
        if batch.seq == g.applied_seq + 1 {
            self.apply_one(&mut g, batch);
            loop {
                let next_seq = g.applied_seq + 1;
                let Some(next) = g.pending.remove(&next_seq) else {
                    break;
                };
                self.apply_one(&mut g, &next);
            }
        } else {
            if !g.pending.contains_key(&batch.seq) {
                g.counters.buffered_gaps += 1;
            }
            g.pending.insert(batch.seq, batch.clone());
        }
        Ack { applied_seq: g.applied_seq }
    }

    fn apply_one(&self, g: &mut EdgeInner, batch: &EjectBatch) {
        let removed = self.cache.invalidate(batch.pages.iter());
        g.counters.ejected_pages += removed as u64;
        g.counters.applied_batches += 1;
        g.applied_seq = batch.seq;
    }

    /// Admit a page at this edge. Declined while degraded — a degraded
    /// edge must stay empty so it cannot serve anything stale.
    pub fn admit(&self, key: PageKey, body: String, now: Micros) -> bool {
        if self.inner.lock().degraded {
            return false;
        }
        self.cache.put(key, body, now);
        true
    }

    /// Enter degraded (self-ejection) mode: flush the whole cache — the
    /// Vcache-style conservative fallback while the bus cannot renew this
    /// edge. Returns `(newly_degraded, pages_flushed)`.
    pub fn enter_degraded(&self) -> (bool, usize) {
        let mut g = self.inner.lock();
        let newly = !g.degraded;
        g.degraded = true;
        if newly {
            g.counters.self_ejections += 1;
        }
        drop(g);
        let flushed = self.cache.clear();
        self.inner.lock().counters.flushed_pages += flushed as u64;
        (newly, flushed)
    }

    /// Leave degraded mode (called once the watermark catch-up completes).
    pub fn exit_degraded(&self) {
        self.inner.lock().degraded = false;
    }

    /// Whether the edge is currently self-ejecting.
    pub fn is_degraded(&self) -> bool {
        self.inner.lock().degraded
    }

    /// Reboot the endpoint: its volatile state (watermark, gap buffer) is
    /// lost and rebuilt from the bus's last *acked* mark, and pages
    /// admitted at or after that mark's timestamp are conservatively
    /// flushed before rejoining. Returns the flush count.
    pub fn reboot(&self, acked: u64, acked_ts: Micros) -> usize {
        let mut g = self.inner.lock();
        g.pending.clear();
        g.applied_seq = acked;
        drop(g);
        let flushed = self.cache.evict_admitted_since(acked_ts);
        self.inner.lock().counters.flushed_pages += flushed as u64;
        flushed
    }

    /// Full conservative rebase: the retained history this edge needs was
    /// lost (invalidator crash or retention overflow), so drop everything
    /// and jump the watermark to `latest`. Empty cache + current watermark
    /// is trivially fresh.
    pub fn rebase(&self, latest: u64) -> usize {
        let mut g = self.inner.lock();
        g.pending.clear();
        g.applied_seq = latest;
        drop(g);
        let flushed = self.cache.clear();
        self.inner.lock().counters.flushed_pages += flushed as u64;
        flushed
    }

    /// Highest contiguously applied batch seq.
    pub fn applied_seq(&self) -> u64 {
        self.inner.lock().applied_seq
    }

    /// Batches parked in the gap buffer.
    pub fn pending_gaps(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Apply-side counters.
    pub fn counters(&self) -> EdgeCounters {
        self.inner.lock().counters
    }
}

/// Bus tuning knobs.
#[derive(Debug, Clone)]
pub struct BusConfig {
    /// Delivery attempts per batch per round (>= 1). Partitioned edges
    /// get a single probe per round instead.
    pub max_attempts: u32,
    /// Base for the modeled exponential backoff between attempts
    /// (recorded in the delivery report, never slept).
    pub backoff_base_micros: u64,
    /// Consecutive failed rounds before an edge is marked partitioned.
    pub partition_after: u64,
    /// Rounds an edge may go un-renewed before it self-ejects. 0 means
    /// the lease expires on the first missed round — the setting the
    /// zero-staleness oracle requires.
    pub lease_rounds: u64,
    /// Hard cap on retained (undelivered + redelivery-buffer) batches.
    pub retain_cap: usize,
    /// Newest batches kept past full acknowledgement as a redelivery
    /// buffer (lost-ack recovery).
    pub redelivery_keep: u64,
}

impl Default for BusConfig {
    fn default() -> BusConfig {
        BusConfig {
            max_attempts: 3,
            backoff_base_micros: 1_000,
            partition_after: 2,
            lease_rounds: 0,
            retain_cap: 1024,
            redelivery_keep: 4,
        }
    }
}

/// What one [`InvalidationBus::deliver_all`] round did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeliveryReport {
    /// Round ordinal (monotone).
    pub round: u64,
    /// Successful deliveries (acked batches).
    pub deliveries_ok: u64,
    /// Failed delivery attempts.
    pub failed_attempts: u64,
    /// Retry attempts issued (attempts beyond the first per batch).
    pub retries: u64,
    /// Catch-up deliveries (batches older than the newest published).
    pub catch_up_batches: u64,
    /// Modeled backoff accumulated this round.
    pub backoff_micros: u64,
    /// Edges newly marked partitioned this round.
    pub newly_partitioned: Vec<String>,
    /// Edges that healed (partition cleared) this round.
    pub healed: Vec<String>,
    /// Edges that newly self-ejected (entered degraded mode) this round.
    pub self_ejected: Vec<String>,
}

/// Aggregate bus counters for metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Batches published.
    pub published: u64,
    /// Delivery rounds run.
    pub rounds: u64,
    /// Successful deliveries across all rounds.
    pub deliveries_ok: u64,
    /// Failed delivery attempts across all rounds.
    pub delivery_failures: u64,
    /// Retry attempts across all rounds.
    pub retries: u64,
    /// Catch-up deliveries across all rounds.
    pub catch_up_batches: u64,
    /// Registered edges.
    pub edges: u64,
    /// Edges currently marked partitioned.
    pub partitioned_edges: u64,
    /// Batches currently retained.
    pub retained: u64,
    /// Edge reboots processed.
    pub reboots: u64,
    /// Duplicate deliveries absorbed (summed over in-process edges).
    pub duplicates_absorbed: u64,
    /// Gap-buffered deliveries (summed over in-process edges).
    pub gaps_buffered: u64,
    /// Self-ejection (degradation) events (summed over in-process edges).
    pub self_ejections: u64,
    /// Pages conservatively flushed (summed over in-process edges).
    pub flushed_pages: u64,
}

/// One `/bus` table row.
#[derive(Debug, Clone)]
pub struct EdgeRow {
    /// Edge name.
    pub name: String,
    /// Registration index.
    pub index: usize,
    /// Whether an in-process endpoint is attached (false = remote).
    pub connected: bool,
    /// Highest acked batch seq.
    pub acked: u64,
    /// Logical timestamp of the last full renewal.
    pub acked_ts: Micros,
    /// Batches behind the latest published seq.
    pub lag: u64,
    /// Marked partitioned by the bus.
    pub partitioned: bool,
    /// Self-ejecting (degraded) right now.
    pub degraded: bool,
    /// Consecutive rounds without a full renewal.
    pub consec_failed_rounds: u64,
    /// Retry attempts spent on this edge.
    pub retries: u64,
    /// Failed delivery attempts on this edge.
    pub failures: u64,
    /// Round of the last full renewal.
    pub last_renewal_round: u64,
    /// Apply-side counters (zero for remote edges).
    pub counters: EdgeCounters,
}

struct EdgeSlot {
    name: String,
    endpoint: Option<Arc<EdgeEndpoint>>,
    acked: u64,
    acked_ts: Micros,
    partitioned: bool,
    consec_failed_rounds: u64,
    retries_total: u64,
    failures_total: u64,
    last_renewal_round: u64,
}

struct BusInner {
    next_seq: u64,
    retained: BTreeMap<u64, EjectBatch>,
    edges: Vec<EdgeSlot>,
    restored: Vec<(String, u64, u64)>,
    rounds: u64,
    published: u64,
    deliveries_ok: u64,
    delivery_failures: u64,
    retries: u64,
    catch_up_batches: u64,
    reboots: u64,
}

/// The invalidator side of the bus: sequencing, retained batches,
/// per-edge watermarks, retry/partition bookkeeping.
pub struct InvalidationBus {
    config: BusConfig,
    transport: Arc<dyn BusTransport>,
    plan: FaultPlan,
    inner: Mutex<BusInner>,
}

impl InvalidationBus {
    /// A bus over `transport`. `plan` drives the deterministic reorder
    /// scheduling (the drop/dup/partition sites live in the transport).
    pub fn new(config: BusConfig, transport: Arc<dyn BusTransport>, plan: FaultPlan) -> InvalidationBus {
        InvalidationBus {
            config,
            transport,
            plan,
            inner: Mutex::new(BusInner {
                next_seq: 1,
                retained: BTreeMap::new(),
                edges: Vec::new(),
                restored: Vec::new(),
                rounds: 0,
                published: 0,
                deliveries_ok: 0,
                delivery_failures: 0,
                retries: 0,
                catch_up_batches: 0,
                reboots: 0,
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Register an in-process edge cache. If a durable watermark was
    /// restored for `name`, the edge rejoins conservatively: pages
    /// admitted past the mark's timestamp are flushed, and if the mark is
    /// older than the latest published seq (the retained batches between
    /// them died with the crashed invalidator) the edge is fully rebased.
    /// Returns the registration index.
    pub fn register_edge(&self, name: &str, cache: Arc<PageCache>, now: Micros) -> usize {
        let mut inner = self.inner.lock();
        let latest = inner.next_seq - 1;
        let round = inner.rounds;
        let restored = inner
            .restored
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, seq, ts)| (seq, ts));
        let (endpoint, acked, acked_ts) = match restored {
            Some((seq, ts)) if seq >= latest => {
                // The mark is current: flush only what was admitted past it.
                let ep = Arc::new(EdgeEndpoint::new(name, cache, seq));
                ep.cache().evict_admitted_since(ts.saturating_add(1));
                (ep, seq, ts)
            }
            Some((seq, _)) => {
                // Batches in (seq, latest] were lost with the crash —
                // nothing to replay, so full flush + rebase.
                let ep = Arc::new(EdgeEndpoint::new(name, cache, seq));
                ep.rebase(latest);
                (ep, latest, now)
            }
            None => {
                // Fresh edge, empty cache: start at the current frontier.
                (Arc::new(EdgeEndpoint::new(name, cache, latest)), latest, now)
            }
        };
        let idx = inner.edges.len();
        inner.edges.push(EdgeSlot {
            name: name.to_string(),
            endpoint: Some(endpoint.clone()),
            acked,
            acked_ts,
            partitioned: false,
            consec_failed_rounds: 0,
            retries_total: 0,
            failures_total: 0,
            last_renewal_round: round,
        });
        drop(inner);
        self.transport.attach(idx, endpoint);
        idx
    }

    /// Register a remote edge (real-socket transport): the bus tracks its
    /// watermark but cannot flush or degrade it locally.
    pub fn register_remote_edge(&self, name: &str, now: Micros) -> usize {
        let mut inner = self.inner.lock();
        let latest = inner.next_seq - 1;
        let round = inner.rounds;
        let idx = inner.edges.len();
        inner.edges.push(EdgeSlot {
            name: name.to_string(),
            endpoint: None,
            acked: latest,
            acked_ts: now,
            partitioned: false,
            consec_failed_rounds: 0,
            retries_total: 0,
            failures_total: 0,
            last_renewal_round: round,
        });
        idx
    }

    /// Sequence one sync point's ejects into a retained batch. Always
    /// publish — an empty batch is the heartbeat that lets edges prove
    /// they are caught up. Returns the assigned seq.
    pub fn publish(&self, sync_seq: u64, ts: Micros, pages: Vec<PageKey>) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.published += 1;
        inner.retained.insert(
            seq,
            EjectBatch {
                seq,
                sync_seq,
                ts,
                pages,
            },
        );
        seq
    }

    /// One delivery round: for every edge, send the backlog past its
    /// watermark (at-least-once, bounded retries, modeled backoff), then
    /// enforce the lease — an edge that could not be fully renewed
    /// self-ejects, and past the partition budget it is marked
    /// partitioned. Retained batches below every watermark are pruned
    /// (minus a small redelivery buffer).
    pub fn deliver_all(&self, now: Micros) -> DeliveryReport {
        let mut inner = self.inner.lock();
        inner.rounds += 1;
        let round = inner.rounds;
        let latest = inner.next_seq - 1;
        let mut report = DeliveryReport {
            round,
            ..DeliveryReport::default()
        };
        let reorder = self.plan.bus_reorder_sends();
        for idx in 0..inner.edges.len() {
            let (acked, partitioned) = {
                let s = &inner.edges[idx];
                (s.acked, s.partitioned)
            };
            // The backlog: everything retained past this edge's watermark.
            let mut backlog: Vec<EjectBatch> = inner
                .retained
                .range(acked + 1..)
                .map(|(_, b)| b.clone())
                .collect();
            let contiguous = backlog.first().map(|b| b.seq == acked + 1).unwrap_or(true);
            if acked < latest && !contiguous {
                // Retention lost the prefix this edge needs (cap overflow):
                // full conservative rebase, then it is current by definition.
                let slot = &mut inner.edges[idx];
                if let Some(ep) = &slot.endpoint {
                    ep.rebase(latest);
                    report.self_ejected.push(slot.name.clone());
                }
                slot.acked = latest;
                slot.acked_ts = now;
                slot.consec_failed_rounds = 0;
                slot.last_renewal_round = round;
                if slot.partitioned {
                    slot.partitioned = false;
                    report.healed.push(slot.name.clone());
                }
                continue;
            }
            if reorder && backlog.len() > 1 {
                backlog.reverse();
            }
            // Partitioned edges get one probe; healthy edges full retries.
            let max_attempts = if partitioned {
                1
            } else {
                self.config.max_attempts.max(1)
            };
            let mut new_acked = acked;
            let mut round_ok = true;
            for batch in &backlog {
                let mut delivered = false;
                for attempt in 0..max_attempts {
                    if attempt > 0 {
                        report.retries += 1;
                        inner.retries += 1;
                        inner.edges[idx].retries_total += 1;
                        report.backoff_micros +=
                            self.config.backoff_base_micros << (attempt - 1).min(10);
                    }
                    match self.transport.deliver(idx, batch, attempt) {
                        Ok(ack) => {
                            new_acked = new_acked.max(ack.applied_seq);
                            report.deliveries_ok += 1;
                            inner.deliveries_ok += 1;
                            if batch.seq < latest {
                                report.catch_up_batches += 1;
                                inner.catch_up_batches += 1;
                            }
                            delivered = true;
                            break;
                        }
                        Err(_) => {
                            report.failed_attempts += 1;
                            inner.delivery_failures += 1;
                            inner.edges[idx].failures_total += 1;
                        }
                    }
                }
                if !delivered {
                    round_ok = false;
                    break;
                }
            }
            let config = self.config.clone();
            let slot = &mut inner.edges[idx];
            if new_acked > slot.acked {
                slot.acked = new_acked;
                slot.acked_ts = now;
            }
            if round_ok && slot.acked == latest {
                slot.consec_failed_rounds = 0;
                slot.last_renewal_round = round;
                if slot.partitioned {
                    slot.partitioned = false;
                    report.healed.push(slot.name.clone());
                }
                if let Some(ep) = &slot.endpoint {
                    if ep.is_degraded() {
                        // Watermark catch-up complete: admission resumes.
                        ep.exit_degraded();
                    }
                }
            } else {
                slot.consec_failed_rounds += 1;
                if !slot.partitioned && slot.consec_failed_rounds >= config.partition_after {
                    slot.partitioned = true;
                    report.newly_partitioned.push(slot.name.clone());
                }
                if round - slot.last_renewal_round > config.lease_rounds {
                    if let Some(ep) = &slot.endpoint {
                        let (newly, _) = ep.enter_degraded();
                        if newly {
                            report.self_ejected.push(slot.name.clone());
                        }
                    }
                }
            }
        }
        self.gc_retained(&mut inner, latest);
        report
    }

    fn gc_retained(&self, inner: &mut BusInner, latest: u64) {
        let min_acked = inner
            .edges
            .iter()
            .map(|s| s.acked)
            .min()
            .unwrap_or(latest);
        // Keep a small redelivery buffer of the newest batches even once
        // fully acked (lost-ack recovery via redeliver_all).
        let gc_limit = min_acked.min(latest.saturating_sub(self.config.redelivery_keep));
        let doomed: Vec<u64> = inner
            .retained
            .range(..=gc_limit)
            .map(|(&k, _)| k)
            .collect();
        for k in doomed {
            inner.retained.remove(&k);
        }
        while inner.retained.len() > self.config.retain_cap.max(1) {
            let Some((&oldest, _)) = inner.retained.iter().next() else {
                break;
            };
            inner.retained.remove(&oldest);
        }
    }

    /// Redeliver every retained batch to every connected edge once —
    /// models the at-least-once path after a lost ack: the sender cannot
    /// know what arrived, so it sends again and idempotent apply absorbs
    /// the duplicates. Returns successful deliveries.
    pub fn redeliver_all(&self) -> u64 {
        let inner = self.inner.lock();
        let mut delivered = 0;
        for (idx, slot) in inner.edges.iter().enumerate() {
            if slot.endpoint.is_none() {
                continue;
            }
            for batch in inner.retained.values() {
                if self.transport.deliver(idx, batch, 0).is_ok() {
                    delivered += 1;
                }
            }
        }
        delivered
    }

    /// Reboot edge `idx`: its volatile endpoint state is rebuilt from the
    /// bus-side acked mark, and pages admitted past the mark are flushed
    /// (see [`EdgeEndpoint::reboot`]). The next round's catch-up replays
    /// anything past the mark. Returns the flush count.
    pub fn reboot_edge(&self, idx: usize, _now: Micros) -> usize {
        let mut inner = self.inner.lock();
        inner.reboots += 1;
        let slot = &inner.edges[idx];
        match &slot.endpoint {
            Some(ep) => ep.reboot(slot.acked, slot.acked_ts),
            None => 0,
        }
    }

    /// Durable watermark record: `(next_seq, [(edge, acked, acked_ts)])`.
    /// Persisted alongside the sync cursor so recovery never re-opens a
    /// staleness window.
    pub fn durable_marks(&self) -> (u64, Vec<(String, u64, u64)>) {
        let inner = self.inner.lock();
        (
            inner.next_seq,
            inner
                .edges
                .iter()
                .map(|s| (s.name.clone(), s.acked, s.acked_ts))
                .collect(),
        )
    }

    /// Restore the sequence frontier and per-edge marks from the durable
    /// journal. Marks are matched by name when edges re-register.
    pub fn restore(&self, bus_seq: u64, marks: &[(String, u64, u64)]) {
        let mut inner = self.inner.lock();
        if bus_seq > inner.next_seq {
            inner.next_seq = bus_seq;
        }
        inner.restored = marks.to_vec();
    }

    /// The latest published seq (0 = nothing published).
    pub fn latest_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }

    /// Number of registered edges.
    pub fn edge_count(&self) -> usize {
        self.inner.lock().edges.len()
    }

    /// Edges currently marked partitioned.
    pub fn partitioned_count(&self) -> u64 {
        self.inner
            .lock()
            .edges
            .iter()
            .filter(|s| s.partitioned)
            .count() as u64
    }

    /// In-process edge caches (freshness-oracle support).
    pub fn edge_caches(&self) -> Vec<Arc<PageCache>> {
        self.inner
            .lock()
            .edges
            .iter()
            .filter_map(|s| s.endpoint.as_ref().map(|e| e.cache().clone()))
            .collect()
    }

    /// In-process endpoints, by registration order.
    pub fn endpoints(&self) -> Vec<Arc<EdgeEndpoint>> {
        self.inner
            .lock()
            .edges
            .iter()
            .filter_map(|s| s.endpoint.clone())
            .collect()
    }

    /// Admit a page at every healthy (connected, non-degraded) edge.
    /// Returns how many edges admitted it.
    pub fn admit_page(&self, key: &PageKey, body: &str, now: Micros) -> usize {
        let endpoints: Vec<Arc<EdgeEndpoint>> = self
            .inner
            .lock()
            .edges
            .iter()
            .filter_map(|s| s.endpoint.clone())
            .collect();
        endpoints
            .iter()
            .filter(|ep| ep.admit(key.clone(), body.to_string(), now))
            .count()
    }

    /// Aggregate counters for metrics.
    pub fn stats(&self) -> BusStats {
        let inner = self.inner.lock();
        let mut stats = BusStats {
            published: inner.published,
            rounds: inner.rounds,
            deliveries_ok: inner.deliveries_ok,
            delivery_failures: inner.delivery_failures,
            retries: inner.retries,
            catch_up_batches: inner.catch_up_batches,
            edges: inner.edges.len() as u64,
            partitioned_edges: inner.edges.iter().filter(|s| s.partitioned).count() as u64,
            retained: inner.retained.len() as u64,
            reboots: inner.reboots,
            ..BusStats::default()
        };
        for slot in &inner.edges {
            if let Some(ep) = &slot.endpoint {
                let c = ep.counters();
                stats.duplicates_absorbed += c.absorbed_duplicates;
                stats.gaps_buffered += c.buffered_gaps;
                stats.self_ejections += c.self_ejections;
                stats.flushed_pages += c.flushed_pages;
            }
        }
        stats
    }

    /// Per-edge state rows (the `/bus` table and `obsctl bus`).
    pub fn edge_rows(&self) -> Vec<EdgeRow> {
        let inner = self.inner.lock();
        let latest = inner.next_seq - 1;
        inner
            .edges
            .iter()
            .enumerate()
            .map(|(index, s)| EdgeRow {
                name: s.name.clone(),
                index,
                connected: s.endpoint.is_some(),
                acked: s.acked,
                acked_ts: s.acked_ts,
                lag: latest.saturating_sub(s.acked),
                partitioned: s.partitioned,
                degraded: s
                    .endpoint
                    .as_ref()
                    .map(|e| e.is_degraded())
                    .unwrap_or(false),
                consec_failed_rounds: s.consec_failed_rounds,
                retries: s.retries_total,
                failures: s.failures_total,
                last_renewal_round: s.last_renewal_round,
                counters: s
                    .endpoint
                    .as_ref()
                    .map(|e| e.counters())
                    .unwrap_or_default(),
            })
            .collect()
    }

    /// The `/bus` admin document.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let stats = self.stats();
        let rows: Vec<Value> = self
            .edge_rows()
            .into_iter()
            .map(|r| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(r.name)),
                    ("index".to_string(), Value::UInt(r.index as u64)),
                    ("connected".to_string(), Value::Bool(r.connected)),
                    ("acked".to_string(), Value::UInt(r.acked)),
                    ("acked_ts".to_string(), Value::UInt(r.acked_ts)),
                    ("lag".to_string(), Value::UInt(r.lag)),
                    ("partitioned".to_string(), Value::Bool(r.partitioned)),
                    ("degraded".to_string(), Value::Bool(r.degraded)),
                    (
                        "consec_failed_rounds".to_string(),
                        Value::UInt(r.consec_failed_rounds),
                    ),
                    ("retries".to_string(), Value::UInt(r.retries)),
                    ("failures".to_string(), Value::UInt(r.failures)),
                    (
                        "last_renewal_round".to_string(),
                        Value::UInt(r.last_renewal_round),
                    ),
                    (
                        "applied_batches".to_string(),
                        Value::UInt(r.counters.applied_batches),
                    ),
                    (
                        "duplicates_absorbed".to_string(),
                        Value::UInt(r.counters.absorbed_duplicates),
                    ),
                    (
                        "gaps_buffered".to_string(),
                        Value::UInt(r.counters.buffered_gaps),
                    ),
                    (
                        "ejected_pages".to_string(),
                        Value::UInt(r.counters.ejected_pages),
                    ),
                    (
                        "self_ejections".to_string(),
                        Value::UInt(r.counters.self_ejections),
                    ),
                    (
                        "flushed_pages".to_string(),
                        Value::UInt(r.counters.flushed_pages),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::String("cacheportal.bus.v1".to_string()),
            ),
            ("latest_seq".to_string(), Value::UInt(self.latest_seq())),
            ("published".to_string(), Value::UInt(stats.published)),
            ("rounds".to_string(), Value::UInt(stats.rounds)),
            ("retained".to_string(), Value::UInt(stats.retained)),
            (
                "deliveries_ok".to_string(),
                Value::UInt(stats.deliveries_ok),
            ),
            (
                "delivery_failures".to_string(),
                Value::UInt(stats.delivery_failures),
            ),
            ("retries".to_string(), Value::UInt(stats.retries)),
            (
                "catch_up_batches".to_string(),
                Value::UInt(stats.catch_up_batches),
            ),
            (
                "partitioned_edges".to_string(),
                Value::UInt(stats.partitioned_edges),
            ),
            ("reboots".to_string(), Value::UInt(stats.reboots)),
            ("edges".to_string(), Value::Array(rows)),
        ])
    }
}

struct MemoryState {
    endpoints: Vec<Option<Arc<EdgeEndpoint>>>,
    forced_down: Vec<bool>,
    plan: FaultPlan,
}

/// The deterministic in-process transport: delivery is a function call
/// into the edge endpoint, with the shared [`FaultPlan`] injecting drops,
/// duplicates, and partition windows per (edge, seq, attempt), plus a
/// manual per-edge partition override for scripted drills.
pub struct MemoryTransport {
    state: Mutex<MemoryState>,
}

impl MemoryTransport {
    /// A transport whose faults are driven by `plan` (an inert plan makes
    /// it perfectly reliable).
    pub fn new(plan: FaultPlan) -> MemoryTransport {
        MemoryTransport {
            state: Mutex::new(MemoryState {
                endpoints: Vec::new(),
                forced_down: Vec::new(),
                plan,
            }),
        }
    }

    /// Manually force an edge's link down/up (the scripted partition
    /// drill's lever; independent of the fault plan).
    pub fn set_partitioned(&self, edge: usize, down: bool) {
        let mut st = self.state.lock();
        if edge >= st.forced_down.len() {
            st.forced_down.resize(edge + 1, false);
        }
        st.forced_down[edge] = down;
    }
}

impl BusTransport for MemoryTransport {
    fn deliver(&self, edge: usize, batch: &EjectBatch, attempt: u32) -> Result<Ack, TransportError> {
        let st = self.state.lock();
        if st.forced_down.get(edge).copied().unwrap_or(false) {
            return Err(TransportError::Unreachable("forced-partition"));
        }
        if st.plan.edge_partitioned(edge as u64) {
            return Err(TransportError::Unreachable("partition-window"));
        }
        if st.plan.bus_drop_delivery(edge as u64, batch.seq, attempt) {
            return Err(TransportError::Unreachable("dropped"));
        }
        let ep = st
            .endpoints
            .get(edge)
            .and_then(|e| e.clone())
            .ok_or(TransportError::Unreachable("no-endpoint"))?;
        let duplicate = st.plan.bus_duplicate_delivery(edge as u64, batch.seq);
        drop(st);
        let ack = ep.apply(batch);
        if duplicate {
            // The wire delivered two copies: apply again, return the
            // second (idempotent) ack.
            return Ok(ep.apply(batch));
        }
        Ok(ack)
    }

    fn attach(&self, edge: usize, endpoint: Arc<EdgeEndpoint>) {
        let mut st = self.state.lock();
        if edge >= st.endpoints.len() {
            st.endpoints.resize_with(edge + 1, || None);
        }
        st.endpoints[edge] = Some(endpoint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cacheportal_cache::PageCacheConfig;

    fn cache() -> Arc<PageCache> {
        Arc::new(PageCache::new(PageCacheConfig::default()))
    }

    fn key(s: &str) -> PageKey {
        PageKey::raw(s)
    }

    fn reliable_bus() -> (InvalidationBus, Arc<MemoryTransport>) {
        let transport = Arc::new(MemoryTransport::new(FaultPlan::none()));
        let bus = InvalidationBus::new(BusConfig::default(), transport.clone(), FaultPlan::none());
        (bus, transport)
    }

    #[test]
    fn sequenced_delivery_ejects_at_the_edge() {
        let (bus, _t) = reliable_bus();
        let edge = cache();
        bus.register_edge("edge-0", edge.clone(), 0);
        edge.put(key("a"), "1".into(), 1);
        edge.put(key("b"), "2".into(), 2);

        let seq = bus.publish(1, 10, vec![key("a")]);
        assert_eq!(seq, 1);
        let report = bus.deliver_all(10);
        assert_eq!(report.deliveries_ok, 1);
        assert_eq!(report.failed_attempts, 0);
        assert!(!edge.contains(&key("a")));
        assert!(edge.contains(&key("b")));
        let rows = bus.edge_rows();
        assert_eq!(rows[0].acked, 1);
        assert_eq!(rows[0].lag, 0);
    }

    #[test]
    fn duplicates_are_absorbed_idempotently() {
        let edge = cache();
        let ep = EdgeEndpoint::new("e", edge.clone(), 0);
        edge.put(key("a"), "1".into(), 0);
        let batch = EjectBatch {
            seq: 1,
            sync_seq: 1,
            ts: 5,
            pages: vec![key("a")],
        };
        assert_eq!(ep.apply(&batch).applied_seq, 1);
        assert_eq!(ep.apply(&batch).applied_seq, 1, "duplicate is a no-op");
        let c = ep.counters();
        assert_eq!(c.applied_batches, 1);
        assert_eq!(c.absorbed_duplicates, 1);
        assert_eq!(c.ejected_pages, 1);
    }

    #[test]
    fn reorders_park_in_the_gap_buffer_until_the_gap_fills() {
        let edge = cache();
        let ep = EdgeEndpoint::new("e", edge.clone(), 0);
        edge.put(key("a"), "1".into(), 0);
        edge.put(key("b"), "2".into(), 0);
        let b1 = EjectBatch { seq: 1, sync_seq: 1, ts: 1, pages: vec![key("a")] };
        let b2 = EjectBatch { seq: 2, sync_seq: 2, ts: 2, pages: vec![key("b")] };
        // Batch 2 arrives first: buffered, ack stays 0, nothing ejected.
        assert_eq!(ep.apply(&b2).applied_seq, 0);
        assert!(edge.contains(&key("b")));
        assert_eq!(ep.pending_gaps(), 1);
        // Batch 1 fills the gap: both apply in order.
        assert_eq!(ep.apply(&b1).applied_seq, 2);
        assert!(!edge.contains(&key("a")));
        assert!(!edge.contains(&key("b")));
        assert_eq!(ep.pending_gaps(), 0);
        assert_eq!(ep.counters().buffered_gaps, 1);
    }

    #[test]
    fn reorder_plan_reverses_sends_and_catchup_heals() {
        // Drop everything for one round to build a 2-batch backlog, then
        // deliver with reorder: the edge sees newest-first and must gap-buffer.
        let transport = Arc::new(MemoryTransport::new(FaultPlan::none()));
        let plan = FaultPlan::new(cacheportal_db::FaultSpec {
            bus_reorder: true,
            ..cacheportal_db::FaultSpec::default()
        });
        let bus = InvalidationBus::new(BusConfig::default(), transport.clone(), plan);
        let edge = cache();
        bus.register_edge("edge-0", edge.clone(), 0);
        edge.put(key("a"), "1".into(), 0);
        edge.put(key("b"), "2".into(), 0);

        transport.set_partitioned(0, true);
        bus.publish(1, 1, vec![key("a")]);
        let r = bus.deliver_all(1);
        assert_eq!(r.deliveries_ok, 0);
        assert!(edge.is_empty(), "lease expired: edge self-ejected");

        transport.set_partitioned(0, false);
        bus.publish(2, 2, vec![key("b")]);
        let r = bus.deliver_all(2);
        assert_eq!(r.deliveries_ok, 2, "backlog of 2 delivered (reversed)");
        let ep = &bus.endpoints()[0];
        assert_eq!(ep.counters().buffered_gaps, 1, "reversed send gap-buffered");
        assert_eq!(ep.applied_seq(), 2);
        assert!(!ep.is_degraded(), "catch-up complete, admission resumed");
    }

    #[test]
    fn partition_budget_marks_edge_and_heal_catches_up() {
        let (bus, transport) = reliable_bus();
        let edge = cache();
        bus.register_edge("edge-0", edge.clone(), 0);
        edge.put(key("a"), "1".into(), 0);

        transport.set_partitioned(0, true);
        bus.publish(1, 1, vec![key("a")]);
        let r1 = bus.deliver_all(1);
        assert!(r1.newly_partitioned.is_empty(), "budget is 2 rounds");
        assert_eq!(r1.self_ejected, vec!["edge-0".to_string()]);
        assert!(edge.is_empty(), "degraded edge flushed everything");
        assert!(!bus.endpoints()[0].admit(key("x"), "x".into(), 2), "degraded edge declines admission");

        bus.publish(2, 2, vec![]);
        let r2 = bus.deliver_all(2);
        assert_eq!(r2.newly_partitioned, vec!["edge-0".to_string()]);
        assert_eq!(bus.partitioned_count(), 1);

        // Heal: the probe succeeds and the backlog replays from the mark.
        transport.set_partitioned(0, false);
        bus.publish(3, 3, vec![]);
        let r3 = bus.deliver_all(3);
        assert_eq!(r3.healed, vec!["edge-0".to_string()]);
        assert!(r3.catch_up_batches >= 2, "watermark-driven catch-up replayed");
        assert_eq!(bus.partitioned_count(), 0);
        assert_eq!(bus.edge_rows()[0].lag, 0);
        assert!(bus.endpoints()[0].admit(key("x"), "x".into(), 4), "admission resumed");
    }

    #[test]
    fn dropped_deliveries_retry_within_the_round() {
        // bus_drop with seed chosen so some first attempts drop; retries
        // (re-rolled under the attempt key) eventually succeed, so the
        // edge still renews every round.
        let plan = FaultPlan::new(cacheportal_db::FaultSpec {
            seed: 42,
            bus_drop: 0.4,
            ..cacheportal_db::FaultSpec::default()
        });
        let transport = Arc::new(MemoryTransport::new(plan.clone()));
        let bus = InvalidationBus::new(
            BusConfig {
                max_attempts: 8,
                ..BusConfig::default()
            },
            transport,
            plan.clone(),
        );
        let edge = cache();
        bus.register_edge("edge-0", edge.clone(), 0);
        for s in 1..=30u64 {
            bus.publish(s, s, vec![]);
            bus.deliver_all(s);
        }
        assert_eq!(bus.edge_rows()[0].lag, 0, "retries kept the edge current");
        let stats = bus.stats();
        assert!(stats.retries > 0, "drops forced retries");
        assert!(plan.counts().bus_dropped > 0);
    }

    #[test]
    fn rebooted_edge_flushes_past_watermark_and_replays() {
        let (bus, _t) = reliable_bus();
        let edge = cache();
        bus.register_edge("edge-0", edge.clone(), 0);
        edge.put(key("old"), "1".into(), 5);
        bus.publish(1, 10, vec![]);
        bus.deliver_all(10);
        // Admitted past the acked mark (ts 10): must be flushed on reboot.
        edge.put(key("newer"), "2".into(), 15);
        let flushed = bus.reboot_edge(0, 20);
        assert_eq!(flushed, 1);
        assert!(edge.contains(&key("old")));
        assert!(!edge.contains(&key("newer")));
        // The watermark rolled back to the acked mark; the next round
        // redelivers nothing new and the edge stays current.
        bus.publish(2, 21, vec![key("old")]);
        bus.deliver_all(21);
        assert!(edge.is_empty());
        assert_eq!(bus.edge_rows()[0].lag, 0);
    }

    #[test]
    fn restore_with_current_mark_keeps_cache_and_flushes_past_it() {
        let (bus, _t) = reliable_bus();
        // Recovered invalidator: 3 batches were published, edge acked all
        // of them at ts 30.
        bus.restore(4, &[("edge-0".to_string(), 3, 30)]);
        let edge = cache();
        edge.put(key("old"), "1".into(), 20);
        edge.put(key("new"), "2".into(), 40);
        bus.register_edge("edge-0", edge.clone(), 50);
        assert!(edge.contains(&key("old")), "pre-mark page survives recovery");
        assert!(!edge.contains(&key("new")), "past-mark page flushed");
        let rows = bus.edge_rows();
        assert_eq!(rows[0].acked, 3);
        assert_eq!(rows[0].lag, 0);
    }

    #[test]
    fn restore_with_stale_mark_rebases_fully() {
        let (bus, _t) = reliable_bus();
        // The journal's mark (1) is older than the latest published seq
        // (3): batches 2..3 died with the crash, nothing to replay.
        bus.restore(4, &[("edge-0".to_string(), 1, 10)]);
        let edge = cache();
        edge.put(key("old"), "1".into(), 5);
        bus.register_edge("edge-0", edge.clone(), 50);
        assert!(edge.is_empty(), "stale mark forces a full conservative flush");
        assert_eq!(bus.edge_rows()[0].acked, 3);
        assert_eq!(bus.edge_rows()[0].lag, 0);
    }

    #[test]
    fn redeliver_all_is_absorbed_by_idempotent_apply() {
        let (bus, _t) = reliable_bus();
        let edge = cache();
        bus.register_edge("edge-0", edge.clone(), 0);
        edge.put(key("a"), "1".into(), 0);
        edge.put(key("keep"), "2".into(), 0);
        bus.publish(1, 1, vec![key("a")]);
        bus.deliver_all(1);
        let before_len = edge.len();
        let redelivered = bus.redeliver_all();
        assert!(redelivered >= 1, "redelivery buffer retained the batch");
        assert_eq!(edge.len(), before_len, "duplicates changed nothing");
        assert!(bus.endpoints()[0].counters().absorbed_duplicates >= 1);
        assert!(edge.contains(&key("keep")));
    }

    #[test]
    fn bus_json_has_schema_and_edge_rows() {
        let (bus, _t) = reliable_bus();
        bus.register_edge("edge-0", cache(), 0);
        bus.publish(1, 1, vec![]);
        bus.deliver_all(1);
        let doc = bus.to_json();
        assert_eq!(doc["schema"].as_str(), Some("cacheportal.bus.v1"));
        assert_eq!(doc["latest_seq"].as_u64(), Some(1));
        assert_eq!(doc["edges"][0]["name"].as_str(), Some("edge-0"));
        assert_eq!(doc["edges"][0]["lag"].as_u64(), Some(0));
        assert_eq!(doc["edges"][0]["partitioned"].as_bool(), Some(false));
    }
}

//! Real-socket bus transport over `std::net::TcpStream`, mirroring the
//! dependency-free style of the `crates/obs` admin server: one accept
//! thread per edge, line-delimited JSON, connection per delivery.
//!
//! Wire protocol (deliberately trivial — the reliability contract lives in
//! the bus, not the wire): the sender connects, writes one
//! `serde_json`-encoded [`EjectBatch`] terminated by `\n`, and reads back
//! one encoded [`Ack`] line. Any connect/read/parse failure surfaces as
//! [`TransportError::Unreachable`], which the bus treats exactly like a
//! dropped delivery — retry, then partition bookkeeping.
//!
//! This transport exists for CI smoke coverage of the serialization and
//! socket path; the deterministic harness uses [`crate::MemoryTransport`].

use crate::{Ack, BusTransport, EdgeEndpoint, EjectBatch, TransportError};
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Client side: delivers batches to remote [`EdgeServer`]s by address.
/// Edge index = position in the address list (matching the bus's
/// registration order of `register_remote_edge`).
pub struct SocketTransport {
    addrs: Mutex<Vec<SocketAddr>>,
    timeout: Duration,
}

impl SocketTransport {
    /// A transport over `addrs` (index-aligned with edge registration).
    pub fn new(addrs: Vec<SocketAddr>) -> SocketTransport {
        SocketTransport {
            addrs: Mutex::new(addrs),
            timeout: Duration::from_secs(2),
        }
    }

    /// Append an edge address; returns its index.
    pub fn add_edge(&self, addr: SocketAddr) -> usize {
        let mut addrs = self.addrs.lock();
        addrs.push(addr);
        addrs.len() - 1
    }
}

impl BusTransport for SocketTransport {
    fn deliver(&self, edge: usize, batch: &EjectBatch, _attempt: u32) -> Result<Ack, TransportError> {
        let addr = self
            .addrs
            .lock()
            .get(edge)
            .copied()
            .ok_or(TransportError::Unreachable("unknown-edge"))?;
        let stream =
            TcpStream::connect(addr).map_err(|_| TransportError::Unreachable("connect"))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|_| TransportError::Unreachable("socket"))?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|_| TransportError::Unreachable("socket"))?;
        let line = serde_json::to_string(batch).map_err(|_| TransportError::Unreachable("encode"))?;
        let mut writer = stream
            .try_clone()
            .map_err(|_| TransportError::Unreachable("socket"))?;
        writer
            .write_all(line.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .map_err(|_| TransportError::Unreachable("write"))?;
        let mut reply = String::new();
        BufReader::new(stream)
            .read_line(&mut reply)
            .map_err(|_| TransportError::Unreachable("read"))?;
        serde_json::from_str::<Ack>(reply.trim())
            .map_err(|_| TransportError::Unreachable("decode"))
    }
}

/// Server side: one edge endpoint listening for batch deliveries.
/// Dropping (or [`EdgeServer::shutdown`]) stops the accept loop and joins
/// the thread, like the obs admin server.
pub struct EdgeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl EdgeServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and apply incoming batches to
    /// `endpoint` on a background thread.
    pub fn serve(addr: &str, endpoint: Arc<EdgeEndpoint>) -> std::io::Result<EdgeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("cacheportal-bus-edge".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        let _ = handle_delivery(&mut stream, endpoint.as_ref());
                    }
                }
            })?;
        Ok(EdgeServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for EdgeServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn handle_delivery(stream: &mut TcpStream, endpoint: &EdgeEndpoint) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut line = String::new();
    let mut reader = BufReader::new(stream.try_clone().map_err(std::io::Error::other)?);
    reader.read_line(&mut line)?;
    let Ok(batch) = serde_json::from_str::<EjectBatch>(line.trim()) else {
        // Malformed delivery (or the shutdown throwaway connect): no ack.
        return Ok(());
    };
    let ack = endpoint.apply(&batch);
    let reply = serde_json::to_string(&ack).map_err(std::io::Error::other)?;
    stream.write_all(reply.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BusConfig, InvalidationBus};
    use cacheportal_cache::{PageCache, PageCacheConfig};
    use cacheportal_db::FaultPlan;
    use cacheportal_web::PageKey;

    fn key(s: &str) -> PageKey {
        PageKey::raw(s)
    }

    #[test]
    fn batch_and_ack_round_trip_the_wire() {
        let cache = Arc::new(PageCache::new(PageCacheConfig::default()));
        cache.put(key("a"), "1".into(), 1);
        cache.put(key("b"), "2".into(), 2);
        let endpoint = Arc::new(EdgeEndpoint::new("edge-sock", cache.clone(), 0));
        let server = EdgeServer::serve("127.0.0.1:0", endpoint.clone()).unwrap();
        let transport = SocketTransport::new(vec![server.addr()]);

        let batch = EjectBatch {
            seq: 1,
            sync_seq: 7,
            ts: 100,
            pages: vec![key("a")],
        };
        let ack = transport.deliver(0, &batch, 0).unwrap();
        assert_eq!(ack, Ack { applied_seq: 1 });
        assert!(!cache.contains(&key("a")));
        assert!(cache.contains(&key("b")));

        // Redelivery over the wire is absorbed idempotently.
        let ack = transport.deliver(0, &batch, 1).unwrap();
        assert_eq!(ack, Ack { applied_seq: 1 });
        assert_eq!(endpoint.counters().absorbed_duplicates, 1);

        server.shutdown();
    }

    #[test]
    fn dead_edge_is_unreachable_and_bus_marks_it_partitioned() {
        let cache = Arc::new(PageCache::new(PageCacheConfig::default()));
        let endpoint = Arc::new(EdgeEndpoint::new("edge-sock", cache, 0));
        let server = EdgeServer::serve("127.0.0.1:0", endpoint).unwrap();
        let addr = server.addr();
        server.shutdown();

        let transport = Arc::new(SocketTransport::new(vec![addr]));
        let bus = InvalidationBus::new(
            BusConfig {
                max_attempts: 1,
                partition_after: 2,
                ..BusConfig::default()
            },
            transport,
            FaultPlan::none(),
        );
        bus.register_remote_edge("edge-sock", 0);
        bus.publish(1, 1, vec![key("a")]);
        bus.deliver_all(1);
        let report = bus.deliver_all(2);
        assert_eq!(report.newly_partitioned, vec!["edge-sock".to_string()]);
        assert_eq!(bus.partitioned_count(), 1);
    }

    #[test]
    fn bus_drives_a_remote_edge_through_the_socket() {
        let cache = Arc::new(PageCache::new(PageCacheConfig::default()));
        cache.put(key("x"), "1".into(), 1);
        let endpoint = Arc::new(EdgeEndpoint::new("edge-sock", cache.clone(), 0));
        let server = EdgeServer::serve("127.0.0.1:0", endpoint).unwrap();
        let transport = Arc::new(SocketTransport::new(vec![server.addr()]));
        let bus = InvalidationBus::new(BusConfig::default(), transport, FaultPlan::none());
        bus.register_remote_edge("edge-sock", 0);

        bus.publish(1, 10, vec![key("x")]);
        let report = bus.deliver_all(10);
        assert_eq!(report.deliveries_ok, 1);
        assert!(!cache.contains(&key("x")));
        assert_eq!(bus.edge_rows()[0].acked, 1);
        assert_eq!(bus.edge_rows()[0].lag, 0);

        server.shutdown();
    }
}

//! Crash-safe persistence primitives for CachePortal: an append-only,
//! checksummed, fsync-batched write-ahead log plus atomic snapshot
//! checkpoints, with a versioned on-disk format.
//!
//! The portal persists two things across restarts (paper §3–§4: the
//! sniffer's URL↔QI map and the invalidator's position in the DBMS update
//! log). Both are small and append-mostly, so the design is deliberately
//! simple and auditable:
//!
//! * **WAL** (`wal.log`): an 8-byte header (`CPWAL\0` magic + `u16`
//!   version) followed by frames `[len: u32 LE][crc32: u32 LE][payload]`.
//!   Appends are buffered by the OS and flushed with an explicit
//!   [`Wal::sync`] at each durability point (one fsync covers the whole
//!   batch of records appended since the last sync). A torn tail — a
//!   partial frame from a crash mid-write — is detected by length/checksum
//!   and **truncated**, never replayed.
//! * **Snapshot** (`snapshot.bin`): the full serialized state, written to a
//!   temp file, fsynced, then atomically renamed over the previous snapshot
//!   (and the directory fsynced). Header: `CPSNP\0` magic, `u16` version,
//!   `u64` sequence number, `u32` payload length, `u32` crc32.
//!
//! Recovery ([`Recovery::replay`]) loads the latest snapshot (if any) and
//! then every complete WAL frame. Because a crash can land *between* the
//! snapshot rename and the WAL reset, replay may surface WAL records that
//! are already folded into the snapshot — callers must apply records
//! idempotently (the portal's map inserts are deduplicated and its cursor
//! records take the maximum).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// On-disk format version for the WAL. Bump on incompatible changes.
pub const WAL_VERSION: u16 = 1;
/// On-disk format version for snapshots. Bump on incompatible changes.
pub const SNAPSHOT_VERSION: u16 = 1;

const WAL_MAGIC: &[u8; 6] = b"CPWAL\0";
const SNAP_MAGIC: &[u8; 6] = b"CPSNP\0";
const WAL_HEADER_LEN: u64 = 8;
const FRAME_HEADER_LEN: u64 = 8;
const SNAP_HEADER_LEN: usize = 24;
/// Upper bound on a single frame; anything larger is treated as corruption.
const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial), the checksum used by every frame and
/// snapshot in this crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Path of the WAL inside a durability directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// Path of the current snapshot inside a durability directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.bin")
}

/// Plain accounting the embedding layer exports as `durable.*` metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub appends: u64,
    /// Payload + frame-header bytes written since open.
    pub bytes: u64,
    /// Explicit fsync batches issued.
    pub syncs: u64,
    /// Times the log was reset after a snapshot.
    pub resets: u64,
}

/// Result of scanning a WAL file: every complete record, the byte length of
/// the valid prefix, and how many torn-tail bytes follow it.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Payloads of all complete, checksum-valid frames, in append order.
    pub records: Vec<Vec<u8>>,
    /// Length in bytes of the valid prefix (header + complete frames).
    pub valid_len: u64,
    /// Bytes past the valid prefix (partial frame or failed checksum).
    pub torn_bytes: u64,
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Scan a WAL file without modifying it. A missing file is an empty log.
///
/// Torn tails (partial header, partial frame, checksum mismatch, or an
/// implausible length) terminate the scan: everything before them is
/// returned, everything after is reported as `torn_bytes`. A file whose
/// *complete* 8-byte header carries the wrong magic or an unknown version
/// is not a crash artifact and yields an error instead.
pub fn replay_wal(path: &Path) -> io::Result<WalReplay> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(e),
    };
    let mut out = WalReplay::default();
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        // Crash while writing the very first header: nothing durable yet.
        out.torn_bytes = bytes.len() as u64;
        return Ok(out);
    }
    if &bytes[..6] != WAL_MAGIC {
        return Err(corrupt("wal: bad magic"));
    }
    let version = u16::from_le_bytes([bytes[6], bytes[7]]);
    if version != WAL_VERSION {
        return Err(corrupt(format!("wal: unsupported version {version}")));
    }
    let mut off = WAL_HEADER_LEN as usize;
    out.valid_len = WAL_HEADER_LEN;
    while off < bytes.len() {
        if bytes.len() - off < FRAME_HEADER_LEN as usize {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            break; // implausible length: treat as torn garbage
        }
        let start = off + FRAME_HEADER_LEN as usize;
        let end = match start.checked_add(len as usize) {
            Some(e) if e <= bytes.len() => e,
            _ => break, // torn payload
        };
        if crc32(&bytes[start..end]) != crc {
            break; // checksum failed: torn or corrupted, never replay
        }
        out.records.push(bytes[start..end].to_vec());
        off = end;
        out.valid_len = off as u64;
    }
    out.torn_bytes = bytes.len() as u64 - out.valid_len;
    Ok(out)
}

/// An open append-only log. Opening truncates any torn tail so appends
/// always continue from the last complete frame.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    sync_every: usize,
    pending: usize,
    stats: WalStats,
}

impl Wal {
    /// Open (creating if absent) with explicit-only fsync batching: records
    /// accumulate until [`Wal::sync`] is called at the durability point.
    pub fn open(path: &Path) -> io::Result<Wal> {
        Wal::open_with(path, 0)
    }

    /// Open with an automatic fsync every `sync_every` appends
    /// (`0` = only on explicit [`Wal::sync`]).
    pub fn open_with(path: &Path, sync_every: usize) -> io::Result<Wal> {
        let replay = replay_wal(path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        let disk_len = file.metadata()?.len();
        if replay.valid_len == 0 {
            // Empty or torn-header file: start fresh.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = [0u8; WAL_HEADER_LEN as usize];
            header[..6].copy_from_slice(WAL_MAGIC);
            header[6..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
        } else {
            if disk_len != replay.valid_len {
                file.set_len(replay.valid_len)?;
                file.sync_all()?;
            }
            file.seek(SeekFrom::Start(replay.valid_len))?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            sync_every,
            pending: 0,
            stats: WalStats::default(),
        })
    }

    /// Append one record. Durable only after the next [`Wal::sync`] (or
    /// automatic batch flush when `sync_every > 0`).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.stats.appends += 1;
        self.stats.bytes += frame.len() as u64;
        self.pending += 1;
        if self.sync_every > 0 && self.pending >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush every pending append with a single fsync (the batch boundary).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        self.file.sync_all()?;
        self.pending = 0;
        self.stats.syncs += 1;
        Ok(())
    }

    /// Truncate the log back to an empty header — called right after a
    /// snapshot makes every logged record redundant.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        self.file.sync_all()?;
        self.pending = 0;
        self.stats.resets += 1;
        Ok(())
    }

    /// Accounting since open.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The file this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Atomic snapshot checkpoints.
pub struct Checkpoint;

impl Checkpoint {
    /// Durably replace the snapshot: write header + payload to a temp file,
    /// fsync it, rename over `snapshot.bin`, fsync the directory. A crash
    /// at any point leaves either the old or the new snapshot intact.
    pub fn write(dir: &Path, seq: u64, payload: &[u8]) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut buf = Vec::with_capacity(SNAP_HEADER_LEN + payload.len());
        buf.extend_from_slice(SNAP_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        let tmp = dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, snapshot_path(dir))?;
        // Make the rename itself durable.
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Load the current snapshot: `None` if absent, `Err` if present but
    /// failing magic/version/length/checksum validation (the atomic rename
    /// protocol means a damaged snapshot is disk corruption, not a torn
    /// write, so it is refused rather than silently dropped).
    pub fn read(dir: &Path) -> io::Result<Option<(u64, Vec<u8>)>> {
        let bytes = match fs::read(snapshot_path(dir)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if bytes.len() < SNAP_HEADER_LEN {
            return Err(corrupt("snapshot: truncated header"));
        }
        if &bytes[..6] != SNAP_MAGIC {
            return Err(corrupt("snapshot: bad magic"));
        }
        let version = u16::from_le_bytes([bytes[6], bytes[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(corrupt(format!("snapshot: unsupported version {version}")));
        }
        let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        let payload = &bytes[SNAP_HEADER_LEN..];
        if payload.len() != len {
            return Err(corrupt("snapshot: length mismatch"));
        }
        if crc32(payload) != crc {
            return Err(corrupt("snapshot: checksum mismatch"));
        }
        Ok(Some((seq, payload.to_vec())))
    }
}

/// Everything recovery can reconstruct from a durability directory.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Sequence number of the snapshot, if one exists.
    pub snapshot_seq: Option<u64>,
    /// Snapshot payload, if one exists.
    pub snapshot: Option<Vec<u8>>,
    /// Complete WAL records, in append order. May overlap the snapshot if
    /// the crash hit between snapshot rename and WAL reset — apply
    /// idempotently.
    pub wal_records: Vec<Vec<u8>>,
    /// Torn-tail bytes the WAL scan discarded.
    pub wal_torn_bytes: u64,
}

impl Recovery {
    /// Load snapshot + WAL from a durability directory. A missing
    /// directory or empty files yield an empty (but valid) recovery image.
    pub fn replay(dir: &Path) -> io::Result<Recovery> {
        let snap = Checkpoint::read(dir)?;
        let wal = replay_wal(&wal_path(dir))?;
        let (snapshot_seq, snapshot) = match snap {
            Some((seq, payload)) => (Some(seq), Some(payload)),
            None => (None, None),
        };
        Ok(Recovery {
            snapshot_seq,
            snapshot,
            wal_records: wal.records,
            wal_torn_bytes: wal.torn_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cp-durable-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_append_sync_replay_round_trip() {
        let dir = temp_dir("roundtrip");
        let path = wal_path(&dir);
        let payloads: Vec<Vec<u8>> = vec![b"alpha".to_vec(), vec![], vec![0u8; 1000], b"z".to_vec()];
        {
            let mut wal = Wal::open(&path).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
            assert_eq!(wal.stats().appends, 4);
            assert_eq!(wal.stats().syncs, 1);
        }
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, payloads);
        assert_eq!(replay.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_reopen_appends_after_existing_records() {
        let dir = temp_dir("reopen");
        let path = wal_path(&dir);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"one").unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"two").unwrap();
            wal.sync().unwrap();
        }
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, vec![b"one".to_vec(), b"two".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_open_truncates_torn_tail() {
        let dir = temp_dir("torn-open");
        let path = wal_path(&dir);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"keep me").unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: half a frame header.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x55, 0x55, 0x55]).unwrap();
        drop(f);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"after crash").unwrap();
            wal.sync().unwrap();
        }
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, vec![b"keep me".to_vec(), b"after crash".to_vec()]);
        assert_eq!(replay.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_corrupted_payload_byte_drops_only_last_frame() {
        let dir = temp_dir("bitflip");
        let path = wal_path(&dir);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"good").unwrap();
            wal.append(b"mangled").unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, vec![b"good".to_vec()]);
        assert!(replay.torn_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_bad_magic_is_an_error_not_a_torn_tail() {
        let dir = temp_dir("magic");
        let path = wal_path(&dir);
        fs::write(&path, b"NOTWAL\0\0extra-bytes").unwrap();
        assert!(replay_wal(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_reset_clears_records() {
        let dir = temp_dir("reset");
        let path = wal_path(&dir);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"pre-snapshot").unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        wal.append(b"post-snapshot").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let replay = replay_wal(&path).unwrap();
        assert_eq!(replay.records, vec![b"post-snapshot".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_round_trip_and_atomic_replace() {
        let dir = temp_dir("snap");
        assert_eq!(Checkpoint::read(&dir).unwrap(), None);
        Checkpoint::write(&dir, 7, b"state v7").unwrap();
        assert_eq!(Checkpoint::read(&dir).unwrap(), Some((7, b"state v7".to_vec())));
        Checkpoint::write(&dir, 8, b"state v8 bigger").unwrap();
        assert_eq!(
            Checkpoint::read(&dir).unwrap(),
            Some((8, b"state v8 bigger".to_vec()))
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_corruption_is_refused() {
        let dir = temp_dir("snapcorrupt");
        Checkpoint::write(&dir, 1, b"payload-bytes").unwrap();
        let p = snapshot_path(&dir);
        let mut bytes = fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&p, &bytes).unwrap();
        assert!(Checkpoint::read(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_combines_snapshot_and_wal() {
        let dir = temp_dir("recover");
        Checkpoint::write(&dir, 3, b"snapshot-state").unwrap();
        let mut wal = Wal::open(&wal_path(&dir)).unwrap();
        wal.append(b"delta-1").unwrap();
        wal.append(b"delta-2").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let r = Recovery::replay(&dir).unwrap();
        assert_eq!(r.snapshot_seq, Some(3));
        assert_eq!(r.snapshot, Some(b"snapshot-state".to_vec()));
        assert_eq!(r.wal_records, vec![b"delta-1".to_vec(), b"delta-2".to_vec()]);
        assert_eq!(r.wal_torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_of_empty_dir_is_empty() {
        let dir = temp_dir("empty");
        let r = Recovery::replay(&dir).unwrap();
        assert!(r.snapshot.is_none());
        assert!(r.wal_records.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The acceptance-criteria property, exhaustively for a fixed log:
    /// truncating the WAL file at EVERY byte boundary recovers exactly the
    /// frames that are complete within the prefix — never garbage, never an
    /// error.
    #[test]
    fn wal_truncation_at_every_byte_prefix_is_safe() {
        let dir = temp_dir("every-byte");
        let path = wal_path(&dir);
        let payloads: Vec<Vec<u8>> =
            vec![b"first".to_vec(), b"second-record".to_vec(), vec![9u8; 37], b"x".to_vec()];
        {
            let mut wal = Wal::open(&path).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        let full = fs::read(&path).unwrap();
        // Frame boundaries: header, then header+frames cumulatively.
        let mut boundaries = vec![WAL_HEADER_LEN as usize];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + FRAME_HEADER_LEN as usize + p.len());
        }
        for cut in 0..=full.len() {
            let prefix_path = dir.join("prefix.log");
            fs::write(&prefix_path, &full[..cut]).unwrap();
            let replay = replay_wal(&prefix_path).unwrap();
            let expect_n = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            assert_eq!(
                replay.records.len(),
                expect_n,
                "cut at byte {cut}: expected {expect_n} records, got {}",
                replay.records.len()
            );
            assert_eq!(&replay.records[..], &payloads[..expect_n], "cut at byte {cut}");
            // And a Wal reopened on the prefix keeps accepting appends.
            let mut wal = Wal::open(&prefix_path).unwrap();
            wal.append(b"resumed").unwrap();
            wal.sync().unwrap();
            drop(wal);
            let resumed = replay_wal(&prefix_path).unwrap();
            assert_eq!(resumed.records.len(), expect_n + 1, "cut at byte {cut}");
            assert_eq!(resumed.records.last().unwrap(), b"resumed", "cut at byte {cut}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

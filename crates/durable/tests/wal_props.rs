//! Property tests for the WAL/snapshot layer: arbitrary record sequences
//! survive encode → crash-at-any-byte-prefix → replay, torn tails are
//! detected by checksum and truncated, and snapshot+WAL recovery always
//! reconstructs a prefix of the durable history — never garbage.

use cacheportal_durable::{replay_wal, wal_path, Checkpoint, Recovery, Wal};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cp-durable-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&d).unwrap();
    d
}

/// Write `records` through a Wal and return the raw file bytes.
fn encode(dir: &PathBuf, records: &[Vec<u8>]) -> Vec<u8> {
    let path = wal_path(dir);
    let mut wal = Wal::open(&path).unwrap();
    for r in records {
        wal.append(r).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    fs::read(&path).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round trip: whatever goes in comes back out, bit for bit.
    #[test]
    fn wal_round_trip(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..20),
    ) {
        let dir = temp_dir("rt");
        let bytes = encode(&dir, &records);
        let replay = replay_wal(&wal_path(&dir)).unwrap();
        prop_assert_eq!(&replay.records, &records);
        prop_assert_eq!(replay.valid_len, bytes.len() as u64);
        prop_assert_eq!(replay.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Crash at an arbitrary byte prefix: replay returns exactly the
    /// records fully contained in the prefix, in order — a strict prefix
    /// of the original sequence, never reordered or corrupted.
    #[test]
    fn wal_any_byte_prefix_recovers_a_record_prefix(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = temp_dir("cut");
        let bytes = encode(&dir, &records);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let p = dir.join("cut.log");
        fs::write(&p, &bytes[..cut]).unwrap();
        let replay = replay_wal(&p).unwrap();
        prop_assert!(replay.records.len() <= records.len());
        prop_assert_eq!(&replay.records[..], &records[..replay.records.len()]);
        prop_assert_eq!(replay.valid_len + replay.torn_bytes, cut as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Flip any single byte in the last frame: the checksum must catch it
    /// and replay must drop that frame (and everything after the damage)
    /// rather than surface mangled data.
    #[test]
    fn wal_bit_flip_in_tail_is_truncated_not_misreplayed(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..8),
        flip_pos_frac in 0.0f64..1.0,
    ) {
        let dir = temp_dir("flip");
        let mut bytes = encode(&dir, &records);
        // Locate the last frame: header(8) + preceding frames.
        let mut off = 8usize;
        for r in &records[..records.len() - 1] {
            off += 8 + r.len();
        }
        let last_payload = &records[records.len() - 1];
        // Flip a byte inside the last frame's crc or payload region (skip
        // the length field so the frame stays structurally plausible).
        let lo = off + 4;
        let hi = off + 8 + last_payload.len();
        let pos = lo + (((hi - lo - 1) as f64) * flip_pos_frac) as usize;
        bytes[pos] ^= 0x80;
        let p = dir.join("flip.log");
        fs::write(&p, &bytes).unwrap();
        let replay = replay_wal(&p).unwrap();
        prop_assert_eq!(&replay.records[..], &records[..records.len() - 1]);
        prop_assert!(replay.torn_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Snapshot + WAL recovery: for an arbitrary split of a record history
    /// into a snapshotted prefix and a WAL tail, `Recovery::replay`
    /// reconstructs both halves exactly; a torn cut in the WAL tail only
    /// ever shortens the tail.
    #[test]
    fn snapshot_plus_wal_recovery_is_exact(
        snap_payload in prop::collection::vec(any::<u8>(), 0..300),
        seq in 0u64..1000,
        tail in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = temp_dir("snapwal");
        Checkpoint::write(&dir, seq, &snap_payload).unwrap();
        let bytes = encode(&dir, &tail);
        let r = Recovery::replay(&dir).unwrap();
        prop_assert_eq!(r.snapshot_seq, Some(seq));
        prop_assert_eq!(r.snapshot.as_deref(), Some(&snap_payload[..]));
        prop_assert_eq!(&r.wal_records, &tail);
        // Now tear the WAL at an arbitrary byte and recover again: the
        // snapshot is untouched and the tail shrinks to a prefix.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        fs::write(wal_path(&dir), &bytes[..cut]).unwrap();
        let torn = Recovery::replay(&dir).unwrap();
        prop_assert_eq!(torn.snapshot.as_deref(), Some(&snap_payload[..]));
        prop_assert!(torn.wal_records.len() <= tail.len());
        prop_assert_eq!(&torn.wal_records[..], &tail[..torn.wal_records.len()]);
        fs::remove_dir_all(&dir).unwrap();
    }
}

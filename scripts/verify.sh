#!/usr/bin/env bash
# Offline tier-1 verification: build, test, lint. No network access is
# required — every external dependency is vendored under vendor/ as a
# path crate, and Cargo.lock is committed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "verify: OK"

#!/usr/bin/env bash
# Offline tier-1 verification: build, test, lint. No network access is
# required — every external dependency is vendored under vendor/ as a
# path crate, and Cargo.lock is committed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (workspace, offline) =="
cargo test -q --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== fuzz harness smoke (safety contract, all policies x fault classes) =="
# The acceptance matrix: 50 seeds x 40 actions cycling all three
# invalidation policies, workers {1,4}, and every fault class — including
# crash-restart (portal killed mid-trace, recovered from its durable
# journal) and poll-flap (bursty poll failures tripping the circuit
# breaker). Exit 1 on any staleness violation, with the shrunk reproducer
# JSON under target/harness-repros/ (uploaded as a CI artifact).
./target/release/harness smoke --out target/harness-repros

echo "== crash-recovery smoke (durable journal, gap ejection, provenance) =="
# One scripted crash: durable pages survive, the gap page is ejected with
# recovery-gap provenance, the replayed update tail re-ejects its victims,
# and the freshness oracle finds zero stale pages afterwards.
./target/release/recovery_smoke

echo "== bus socket smoke (real TCP transport end-to-end on localhost) =="
# Two edge caches behind EdgeServer TCP listeners, driven over
# SocketTransport: delivery + ack, wire-duplicate absorption, partition
# detection against a dead listener, and watermark catch-up after the
# listener rebinds. The binary asserts every stage and prints greppable
# markers.
BUS_SMOKE_OUT=$(./target/release/bus_smoke)
echo "$BUS_SMOKE_OUT" | grep -q "BUS-SMOKE PASS" \
  || { echo "bus socket smoke failed"; echo "$BUS_SMOKE_OUT"; exit 1; }

echo "== scripted partition drill (partition -> degrade -> heal -> converge) =="
# Portal-level drill: cut one edge's bus link, watch /healthz report
# edge-partitioned while the edge self-ejects to empty (never stale), heal,
# and assert watermark catch-up leaves the drilled edge byte-identical to
# an untouched control edge.
DRILL_OUT=$(./target/release/partition_drill)
echo "$DRILL_OUT" | grep -q "PARTITION-DRILL PASS" \
  || { echo "partition drill failed"; echo "$DRILL_OUT"; exit 1; }

echo "== fuzz harness canary (a broken invalidator must be caught) =="
# Compile the deliberately-unsound invalidator (feature `canary`) and prove
# the harness detects it and emits a replayable shrunk reproducer.
cargo test -q --offline -p cacheportal-harness --features canary

echo "== sync-point scaling smoke test (sync_scale --smoke) =="
# Small burst at 1 vs 2 workers; the binary asserts identical verdicts,
# ejected pages, and poll counts across worker counts and appends a run
# record to the BENCH_sync_scale.json history (uploaded as a CI artifact).
./target/release/sync_scale --smoke
grep -q '"history"' BENCH_sync_scale.json \
  || { echo "BENCH_sync_scale.json is not a history trajectory"; exit 1; }

echo "== registered-QI sweep smoke test (sync_scale --qi-sweep --smoke) =="
# Small-tier predicate-index sweep: each tier runs the identical workload
# with the index on and off and asserts bit-identical verdict/page
# fingerprints (the index may only skip work, never change outcomes). The
# 1M-instance tier with the p95-flatness gate runs nightly.
./target/release/sync_scale --qi-sweep --smoke
grep -q '"qi_sweep"' BENCH_sync_scale.json \
  || { echo "BENCH_sync_scale.json carries no qi_sweep record"; exit 1; }

echo "== shape-mix precision smoke test (sync_scale --shape-mix --smoke) =="
# Shape-aware vs conservative invalidation over the identical workload: the
# binary asserts on ⊆ off at every sync point, a strict eject reduction on
# top-k and aggregate pages, and byte-identical ejects on conjunctive /
# LIKE / IN pages (index tiers may only skip work). The full mix runs
# nightly and feeds the EXPERIMENTS.md precision table.
./target/release/sync_scale --shape-mix --smoke
grep -q '"shape_mix"' BENCH_sync_scale.json \
  || { echo "BENCH_sync_scale.json carries no shape_mix record"; exit 1; }

echo "== tracing-overhead smoke test (trace_overhead --smoke) =="
# Exercises the portal-level tracing A/B path and appends to the
# BENCH_trace_overhead.json history; the <=5% overhead target is enforced
# only on full (non-smoke) runs, where the signal clears scheduler noise.
./target/release/trace_overhead --smoke
grep -q '"history"' BENCH_trace_overhead.json \
  || { echo "BENCH_trace_overhead.json is not a history trajectory"; exit 1; }

echo "== SLO-engine overhead smoke test (slo_overhead --smoke) =="
# A/B replay with the freshness SLO engine armed vs disabled; appends to
# the BENCH_slo_overhead.json history. The <=5% target is enforced only on
# full (non-smoke) runs.
./target/release/slo_overhead --smoke
grep -q '"history"' BENCH_slo_overhead.json \
  || { echo "BENCH_slo_overhead.json is not a history trajectory"; exit 1; }

echo "== SLO breach drill (harness slo-breach) =="
# Deliberately violate a tight freshness objective and prove the whole
# pipeline: burn-rate alert fires, /healthz degrades, the flight recorder
# auto-captures a self-resolving black box, the stable rendering is
# byte-identical across runs, and the alert resolves once windows age out.
./target/release/harness slo-breach

echo "== admin endpoint smoke test (obsctl demo) =="
# Start the demo workload with a live admin server, writing the JSONL
# provenance export CI uploads as an artifact. ADMIN_PORT pins the port
# (default: kernel-assigned ephemeral); a pinned port that is already
# bound fails fast here rather than as a confusing bind error mid-demo.
ADMIN_PORT="${ADMIN_PORT:-0}"
if [ "$ADMIN_PORT" != "0" ]; then
  if (exec 3<>"/dev/tcp/127.0.0.1/$ADMIN_PORT") 2>/dev/null; then
    exec 3>&- 3<&-
    echo "admin port $ADMIN_PORT is already bound; pick another ADMIN_PORT"
    exit 1
  fi
fi
DEMO_LOG=target/obsctl-demo.log
EXPORT=target/obs-export.jsonl
rm -f "$DEMO_LOG" "$EXPORT"
./target/release/obsctl demo --serve "127.0.0.1:$ADMIN_PORT" --hold-secs 60 \
  --export "$EXPORT" >"$DEMO_LOG" 2>&1 &
DEMO_PID=$!
trap 'kill "$DEMO_PID" 2>/dev/null || true' EXIT

ADDR=""
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^admin listening on //p' "$DEMO_LOG" | head -n1)
  [ -n "$ADDR" ] && break
  kill -0 "$DEMO_PID" 2>/dev/null \
    || { echo "demo exited before serving"; cat "$DEMO_LOG"; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "admin server never came up"; cat "$DEMO_LOG"; exit 1; }

# A live healthy portal must pass the health gate (exit 0 on HTTP 200).
./target/release/obsctl health --addr "$ADDR" || { echo "obsctl health failed"; exit 1; }

# curl where available; fall back to obsctl's built-in HTTP client.
if command -v curl >/dev/null 2>&1; then
  curl -fsS "http://$ADDR/healthz" | grep -qx "ok" || { echo "/healthz failed"; exit 1; }
  METRICS=$(curl -fsS "http://$ADDR/metrics")
else
  echo "(curl not found; checking /metrics via obsctl)"
  METRICS=$(./target/release/obsctl metrics --addr "$ADDR")
fi
echo "$METRICS" | grep -q "^cacheportal_" || { echo "/metrics is not Prometheus exposition"; exit 1; }
echo "$METRICS" | grep -q "^cacheportal_invalidator_pages_ejected_total 1$" \
  || { echo "/metrics missing expected eject counter"; exit 1; }

# Causal-tracing surfaces: the demo's eject must be reachable through
# /trace (sync-point phase spans), /timeline (per-sync stage timeline, with
# a deterministic stable rendering), and /scorecards (per-query-type
# cost/benefit rows). The chrome-format timeline is written as an artifact
# loadable in chrome://tracing / Perfetto. Capture each surface once and
# grep the variable — `cmd | grep -q` SIGPIPEs the writer under pipefail.
TRACE_OUT=$(./target/release/obsctl trace --addr "$ADDR")
echo "$TRACE_OUT" | grep -q "sync.phase.eject" \
  || { echo "/trace carries no sync.phase.eject span"; exit 1; }
echo "$TRACE_OUT" | grep -q "update.commit" \
  || { echo "/trace carries no update.commit root"; exit 1; }
TIMELINE_OUT=$(./target/release/obsctl timeline --addr "$ADDR" --json)
echo "$TIMELINE_OUT" | grep -q '"stages"' \
  || { echo "/timeline carries no stage samples"; exit 1; }
TIMELINE_STABLE=$(./target/release/obsctl timeline --addr "$ADDR" --stable --json)
echo "$TIMELINE_STABLE" | grep -q '"stable": true' \
  || { echo "/timeline?stable=1 not marked stable"; exit 1; }
CHROME=target/chrome-trace.json
rm -f "$CHROME"
./target/release/obsctl timeline --addr "$ADDR" --chrome "$CHROME"
test -s "$CHROME" || { echo "chrome trace export missing or empty"; exit 1; }
grep -q '"traceEvents"' "$CHROME" || { echo "chrome trace has no traceEvents"; exit 1; }
SCORECARD_OUT=$(./target/release/obsctl scorecard --addr "$ADDR")
echo "$SCORECARD_OUT" | grep -q "hit_rate" \
  || { echo "scorecard table missing"; exit 1; }
echo "$SCORECARD_OUT" | grep -q "idx_hit" \
  || { echo "scorecard table missing predicate-index columns"; exit 1; }
SCORECARD_JSON=$(./target/release/obsctl scorecard --addr "$ADDR" --json)
echo "$SCORECARD_JSON" | grep -q '"render_cost_units"' \
  || { echo "/scorecards missing cost fields"; exit 1; }
echo "$SCORECARD_JSON" | grep -q '"index_hit_rate"' \
  || { echo "/scorecards missing index_hit_rate"; exit 1; }

# Freshness SLO surfaces: /slo renders the default objectives with burn
# rates (obsctl exits 0 only while nothing fires — the healthy demo must
# pass the gate), and the stable rendering is marked as such.
SLO_OUT=$(./target/release/obsctl slo --addr "$ADDR") \
  || { echo "obsctl slo reported a firing alert on a healthy demo"; exit 1; }
echo "$SLO_OUT" | grep -q "staleness-p99" \
  || { echo "/slo missing the staleness-p99 objective"; exit 1; }
SLO_STABLE=$(./target/release/obsctl slo --addr "$ADDR" --stable --json)
echo "$SLO_STABLE" | grep -q '"stable": true' \
  || { echo "/slo?stable=1 not marked stable"; exit 1; }

# Invalidation bus: the demo attaches two edge caches, so /bus must show
# a healthy per-edge watermark table (obsctl bus exits non-zero while any
# edge is partitioned or degraded — the healthy demo must pass the gate).
BUS_OUT=$(./target/release/obsctl bus --addr "$ADDR") \
  || { echo "obsctl bus reported an unhealthy edge on a healthy demo"; exit 1; }
echo "$BUS_OUT" | grep -q "edge-0" \
  || { echo "obsctl bus table missing edge rows"; exit 1; }
echo "$BUS_OUT" | grep -q "latest_seq=" \
  || { echo "obsctl bus missing the bus summary line"; exit 1; }
BUS_JSON=$(./target/release/obsctl bus --addr "$ADDR" --json)
echo "$BUS_JSON" | grep -q '"cacheportal.bus.v1"' \
  || { echo "/bus missing the versioned schema marker"; exit 1; }

# Black-box flight recorder: an on-demand stable dump is a versioned,
# self-contained bundle (uploaded as a CI artifact).
FLIGHT=target/flightrecord-smoke.json
rm -f "$FLIGHT"
./target/release/obsctl blackbox --addr "$ADDR" --out "$FLIGHT" --stable
grep -q '"cacheportal.flightrecord.v1"' "$FLIGHT" \
  || { echo "flight record missing the versioned schema marker"; exit 1; }
FLIGHT_INDEX=$(./target/release/obsctl blackbox --addr "$ADDR" --index)
echo "$FLIGHT_INDEX" | grep -q "cacheportal.flightrecord.v1.index" \
  || { echo "/flightrecord index missing"; exit 1; }

kill "$DEMO_PID" 2>/dev/null || true
wait "$DEMO_PID" 2>/dev/null || true
trap - EXIT

test -s "$EXPORT" || { echo "JSONL export missing or empty"; exit 1; }
grep -q '"kind": *"eject"' "$EXPORT" || { echo "export carries no eject records"; exit 1; }
grep -q '"kind": *"scorecard"' "$EXPORT" \
  || { echo "export carries no scorecard snapshots"; exit 1; }
grep -q '"trace_id"' "$EXPORT" || { echo "export lines carry no causal ids"; exit 1; }
echo "admin endpoint + JSONL export + tracing surfaces: OK"

echo "verify: OK"

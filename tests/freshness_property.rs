//! The paper's core safety contract, property-tested through the fuzz
//! harness: **after every synchronization point, no cached page differs
//! from a fresh regeneration** — under generated schemas, generated query
//! types, random interleavings of requests/mutations/transactions/policy
//! flips, every invalidation policy, and every fault class.
//!
//! The hand-written two-table schema this file used to carry lives on as a
//! pinned regression scenario (same tables, same three page families),
//! driven through the same harness runner instead of a private action enum.

use cacheportal_harness::{
    gen_actions, run_scenario, Scenario, ServletGen, ServletKind, TableGen,
};
use proptest::prelude::*;

/// The old fixed-schema case, as a harness scenario: two all-Int tables
/// with indexed group columns and the three original page families
/// (single-table select, join, aggregate).
fn pinned_scenario(policy: u8, workers: usize) -> Scenario {
    let table = |name: &str| TableGen {
        name: name.into(),
        v_type: 0, // Int
        w_type: None,
        indexed: true,
        maintained_index: false,
    };
    Scenario {
        seed: 0xcafe,
        tables: vec![table("r"), table("s")],
        servlets: vec![
            ServletGen { name: "single".into(), kind: ServletKind::Select(0) },
            ServletGen { name: "join".into(), kind: ServletKind::Join(0, 1) },
            ServletGen { name: "agg".into(), kind: ServletKind::Agg(1) },
        ],
        policy,
        workers,
        fault: Default::default(),
        initial_rows: 25,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SAFETY: for every policy and worker count, over generated schemas
    /// and workloads, after a sync point no cached page is stale — the
    /// harness runner asserts the oracle after every sync and once more at
    /// the end, and cross-checks metrics coherence.
    #[test]
    fn no_stale_page_after_sync(
        seed in 0u64..1_000_000,
        policy in 0u8..3,
        workers_pick in 0usize..2,
        n_actions in 30usize..70,
    ) {
        let sc = Scenario::generate(seed)
            .with_policy_workers(policy, [1, 4][workers_pick]);
        let actions = gen_actions(&sc, n_actions);
        let outcome = run_scenario(&sc, &actions);
        prop_assert!(
            outcome.violation.is_none(),
            "seed {seed}: {}",
            outcome.violation.unwrap()
        );
    }

    /// SAFETY under failure: same contract with every fault class active —
    /// faults may only over-invalidate, never leave a stale page.
    #[test]
    fn no_stale_page_under_faults(
        seed in 0u64..1_000_000,
        class_pick in 0usize..cacheportal_harness::ALL_CLASSES.len(),
        n_actions in 30usize..60,
    ) {
        let class = cacheportal_harness::ALL_CLASSES[class_pick];
        let sc = Scenario::generate(seed)
            .with_policy_workers((seed % 3) as u8, if seed % 2 == 0 { 1 } else { 4 })
            .with_fault(class.spec(seed));
        let actions = gen_actions(&sc, n_actions);
        let outcome = run_scenario(&sc, &actions);
        prop_assert!(
            outcome.violation.is_none(),
            "seed {seed} class {}: {}",
            class.as_str(),
            outcome.violation.unwrap()
        );
    }
}

/// Pinned regression: the original fixed two-table schema, every policy,
/// sequential and sharded.
#[test]
fn pinned_fixed_schema_stays_fresh() {
    for policy in 0u8..3 {
        for workers in [1usize, 4] {
            let sc = pinned_scenario(policy, workers);
            let actions = gen_actions(&sc, 80);
            let outcome = run_scenario(&sc, &actions);
            assert!(
                outcome.violation.is_none(),
                "policy {policy} workers {workers}: {}",
                outcome.violation.unwrap()
            );
            assert!(outcome.stats.syncs > 0, "the pinned trace must sync");
        }
    }
}

/// LIVENESS/PRECISION: with Exact, a page that survives a sync point is
/// correct AND a page ejected by an insert-only batch truly changed (no
/// over-invalidation for the pinned monotone page families).
#[test]
fn exact_is_precise_for_insert_only_batches() {
    use cacheportal::Served;
    let sc = pinned_scenario(0 /* Exact */, 1);
    let portal = sc.build_portal();

    let grp = 2i64;
    let reqs: Vec<_> = (0..sc.servlets.len()).map(|i| sc.request(i, grp)).collect();
    let mut bodies = Vec::new();
    for req in &reqs {
        bodies.push(portal.request(req).response.body.clone());
    }
    portal.sync_point().unwrap();

    for (i, k, g, n) in [(0usize, 1i64, 2i64, 60i64), (1, 3, 4, 61), (0, 5, 2, 62)] {
        let t = &sc.tables[i % sc.tables.len()];
        portal.update(&t.insert_sql(k, g, n)).unwrap();
    }
    portal.sync_point().unwrap();

    for (req, old_body) in reqs.iter().zip(&bodies) {
        let out = portal.request(req);
        match out.served {
            // Survived in cache: must still be byte-identical.
            Served::CacheHit => assert_eq!(&out.response.body, old_body),
            // Ejected: content must actually differ — insert-only batches
            // on these monotone pages must be precise under Exact.
            Served::Generated => assert_ne!(
                &out.response.body,
                old_body,
                "over-invalidation by insert-only batch"
            ),
        }
    }
    assert!(portal.stale_pages().is_empty());
}

//! The paper's core safety contract, property-tested: **after every
//! synchronization point, no cached page differs from a fresh
//! regeneration** — under random data, random page requests, random
//! interleavings of inserts/deletes/updates, and every invalidation policy.
//!
//! Also checks the precision contract of the Exact policy: a page ejected
//! by Exact (for plain select-project-join pages) really did change, unless
//! the engine over-approximated via the correlated-delete guard.

use cacheportal::cache::{EvictionPolicy, PageCacheConfig};
use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::invalidator::{InvalidationPolicy, InvalidatorConfig};
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortal, Served};
use proptest::prelude::*;
use std::sync::Arc;

/// One workload action.
#[derive(Debug, Clone)]
enum Action {
    /// Request a page: (servlet 0..3, group 0..6).
    Request(u8, i64),
    /// Insert into table (0 = R, 1 = S): (table, grp, val).
    Insert(u8, i64, i64),
    /// Delete from table by grp.
    DeleteGrp(u8, i64),
    /// Update val for a grp.
    UpdateVal(u8, i64, i64),
    /// Run a synchronization point.
    Sync,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0u8..3, 0i64..6).prop_map(|(s, g)| Action::Request(s, g)),
        2 => (0u8..2, 0i64..6, 0i64..50).prop_map(|(t, g, v)| Action::Insert(t, g, v)),
        1 => (0u8..2, 0i64..6).prop_map(|(t, g)| Action::DeleteGrp(t, g)),
        1 => (0u8..2, 0i64..6, 0i64..50).prop_map(|(t, g, v)| Action::UpdateVal(t, g, v)),
        2 => Just(Action::Sync),
    ]
}

fn build_portal(policy: InvalidationPolicy, rows: &[(u8, i64, i64)]) -> CachePortal {
    let mut db = Database::new();
    db.execute("CREATE TABLE R (grp INT, val INT, INDEX(grp))").unwrap();
    db.execute("CREATE TABLE S (grp INT, val INT, INDEX(grp))").unwrap();
    for (t, g, v) in rows {
        let table = if *t == 0 { "R" } else { "S" };
        db.insert_row(table, vec![(*g).into(), (*v).into()]).unwrap();
    }
    let mut cfg = InvalidatorConfig::default();
    cfg.policy.default_policy = policy;
    let portal = CachePortal::builder(db)
        .invalidator_config(cfg)
        .cache_config(PageCacheConfig {
            capacity: 64,
            policy: EvictionPolicy::Lru,
            ttl_micros: None,
        })
        .build()
        .unwrap();

    // Three page families: single-table select, join, aggregate.
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("r").with_key_get_params(&["grp"]),
        "R page",
        vec![QueryTemplate::new(
            "SELECT grp, val FROM R WHERE grp = $1 ORDER BY val",
            vec![ParamSource::Get("grp".into(), ColType::Int)],
        )],
    )));
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("join").with_key_get_params(&["grp"]),
        "Join page",
        vec![QueryTemplate::new(
            "SELECT R.val, S.val FROM R, S \
             WHERE R.grp = $1 AND R.val = S.val ORDER BY R.val, S.val",
            vec![ParamSource::Get("grp".into(), ColType::Int)],
        )],
    )));
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("agg").with_key_get_params(&["grp"]),
        "Aggregate page",
        vec![QueryTemplate::new(
            "SELECT COUNT(*), SUM(val) FROM S WHERE grp = $1",
            vec![ParamSource::Get("grp".into(), ColType::Int)],
        )],
    )));
    portal
}

fn apply(portal: &CachePortal, action: &Action) {
    match action {
        Action::Request(s, g) => {
            let path = ["/r", "/join", "/agg"][*s as usize % 3];
            let req = HttpRequest::get("h", path, &[("grp", &g.to_string())]);
            portal.request(&req);
        }
        Action::Insert(t, g, v) => {
            let table = if *t == 0 { "R" } else { "S" };
            portal
                .update(&format!("INSERT INTO {table} VALUES ({g}, {v})"))
                .unwrap();
        }
        Action::DeleteGrp(t, g) => {
            let table = if *t == 0 { "R" } else { "S" };
            portal
                .update(&format!("DELETE FROM {table} WHERE grp = {g}"))
                .unwrap();
        }
        Action::UpdateVal(t, g, v) => {
            let table = if *t == 0 { "R" } else { "S" };
            portal
                .update(&format!("UPDATE {table} SET val = {v} WHERE grp = {g}"))
                .unwrap();
        }
        Action::Sync => {
            portal.sync_point().unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SAFETY: for every policy, after a sync point no cached page is stale.
    #[test]
    fn no_stale_page_after_sync(
        rows in prop::collection::vec((0u8..2, 0i64..6, 0i64..50), 0..30),
        actions in prop::collection::vec(action_strategy(), 1..60),
        policy_pick in 0u8..3,
    ) {
        let policy = [
            InvalidationPolicy::Exact,
            InvalidationPolicy::Conservative,
            InvalidationPolicy::TableLevel,
        ][policy_pick as usize];
        let portal = build_portal(policy, &rows);
        for action in &actions {
            apply(&portal, action);
            if matches!(action, Action::Sync) {
                let stale = portal.stale_pages();
                prop_assert!(
                    stale.is_empty(),
                    "stale pages under {policy:?}: {stale:?}"
                );
            }
        }
        // Final sync must always restore freshness.
        portal.sync_point().unwrap();
        let stale = portal.stale_pages();
        prop_assert!(stale.is_empty(), "stale at end under {policy:?}: {stale:?}");
    }

    /// LIVENESS/PRECISION: with Exact, a page that survives a sync point is
    /// correct AND a page ejected by a pure-insert batch truly changed or a
    /// poll justified it. (Delete batches may over-invalidate via the
    /// correlated-delete guard; insert-only batches must be precise for the
    /// single-table and join pages here.)
    #[test]
    fn exact_is_precise_for_insert_only_batches(
        rows in prop::collection::vec((0u8..2, 0i64..6, 0i64..50), 0..30),
        inserts in prop::collection::vec((0u8..2, 0i64..6, 0i64..50), 1..10),
        grp in 0i64..6,
    ) {
        let portal = build_portal(InvalidationPolicy::Exact, &rows);
        // Cache one page of each family and record bodies.
        let reqs: Vec<HttpRequest> = ["/r", "/join", "/agg"]
            .iter()
            .map(|p| HttpRequest::get("h", p, &[("grp", &grp.to_string())]))
            .collect();
        let mut bodies = Vec::new();
        for req in &reqs {
            bodies.push(portal.request(req).response.body.clone());
        }
        portal.sync_point().unwrap();

        for (t, g, v) in &inserts {
            let table = if *t == 0 { "R" } else { "S" };
            portal
                .update(&format!("INSERT INTO {table} VALUES ({g}, {v})"))
                .unwrap();
        }
        portal.sync_point().unwrap();

        for (req, old_body) in reqs.iter().zip(&bodies) {
            let out = portal.request(req);
            match out.served {
                // Survived in cache: must still be correct (checked by the
                // oracle inside stale_pages).
                Served::CacheHit => prop_assert_eq!(&out.response.body, old_body),
                // Ejected: content must actually differ (no over-invalidation
                // for insert-only batches on these monotone pages).
                Served::Generated => prop_assert_ne!(
                    &out.response.body,
                    old_body,
                    "over-invalidation by insert-only batch"
                ),
            }
        }
        prop_assert!(portal.stale_pages().is_empty());
    }
}

//! Pipeline integration: request/query logs → mapper → QI/URL map →
//! invalidator registry, built by hand from the substrate crates (no
//! `CachePortal` facade) — proving the components compose the way the
//! paper's Figure 7 wires them.

use cacheportal_db::schema::ColType;
use cacheportal_db::{Database, Value};
use cacheportal_invalidator::{Invalidator, InvalidatorConfig};
use cacheportal_sniffer::{LoggedConnection, Mapper, QiUrlMap, QueryLog, RequestLog};
use cacheportal_web::{
    shared, AppServer, AppServerConfig, Clock, ConnectionFactory, ConnectionPool, DbConnection,
    HttpRequest, ManualClock, ParamSource, QueryTemplate, ServletSpec, SqlServlet,
};
use std::sync::Arc;

/// Assemble Figure 7 by hand.
struct Deployment {
    db: cacheportal_web::SharedDb,
    app: Arc<AppServer>,
    map: Arc<QiUrlMap>,
    mapper: Mapper,
    invalidator: Invalidator,
}

fn deploy() -> Deployment {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)").unwrap();
    db.execute("INSERT INTO Car VALUES ('Honda','Civic',18000)").unwrap();
    let high_water = db.high_water();
    let db = shared(db);

    let clock = ManualClock::new();
    let query_log = QueryLog::new();
    let factory: ConnectionFactory = {
        let db = db.clone();
        let log = query_log.clone();
        let clock: Arc<dyn Clock> = clock.clone();
        Arc::new(move || {
            Box::new(LoggedConnection::new(
                DbConnection::new(db.clone()),
                log.clone(),
                clock.clone(),
            ))
        })
    };
    let app = Arc::new(AppServer::new(
        ConnectionPool::new(factory, 4),
        clock,
        AppServerConfig {
            rewrite_cache_control: true,
            cache_owner: "cacheportal".into(),
        },
    ));
    let request_log = Arc::new(RequestLog::new());
    app.set_observer(request_log.clone());
    app.register(Arc::new(SqlServlet::new(
        ServletSpec::new("cars").with_key_get_params(&["maxprice"]),
        "Cars",
        vec![QueryTemplate::new(
            "SELECT * FROM Car WHERE price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    )));

    let map = Arc::new(QiUrlMap::new());
    let mapper = Mapper::new(request_log, query_log, map.clone());
    let mut invalidator = Invalidator::new(InvalidatorConfig::default());
    invalidator.start_from(high_water);
    Deployment {
        db,
        app,
        map,
        mapper,
        invalidator,
    }
}

#[test]
fn logs_flow_into_map_and_registry() {
    let mut d = deploy();
    // Two requests with different bounds → two instances of one type.
    for bound in ["20000", "30000"] {
        let resp = d
            .app
            .handle(&HttpRequest::get("h", "/cars", &[("maxprice", bound)]));
        assert_eq!(resp.status.code(), 200);
    }
    let report = d.mapper.run_once();
    assert_eq!(report.mapped, 2);
    assert_eq!(d.map.len(), 2);
    // Map rows carry bound SQL text.
    let rows = d.map.all();
    assert!(rows[0].sql.contains("price < 20000"));

    let inv_report = {
        let db = d.db.write();
        d.invalidator.run_sync_point(&db, &d.map).unwrap()
    };
    assert_eq!(inv_report.registered, 2);
    let reg = d.invalidator.registry();
    assert_eq!(reg.types().len(), 1, "one query type discovered");
    assert_eq!(reg.total_instances(), 2);
    assert_eq!(reg.get(reg.types()[0].id).n_params, 1);
}

#[test]
fn update_through_pipeline_names_the_right_page() {
    let mut d = deploy();
    d.app
        .handle(&HttpRequest::get("h", "/cars", &[("maxprice", "20000")]));
    d.app
        .handle(&HttpRequest::get("h", "/cars", &[("maxprice", "15000")]));
    d.mapper.run_once();
    {
        let db = d.db.write();
        d.invalidator.run_sync_point(&db, &d.map).unwrap();
    }

    // 17000 affects the 20000 page but not the 15000 page.
    d.db
        .write()
        .execute("INSERT INTO Car VALUES ('Kia','Rio',17000)")
        .unwrap();
    let report = {
        let db = d.db.write();
        d.invalidator.run_sync_point(&db, &d.map).unwrap()
    };
    assert_eq!(report.pages.len(), 1);
    let page = report.pages.iter().next().unwrap();
    assert!(
        page.as_str().contains("maxprice=20000"),
        "wrong page named: {page}"
    );
}

#[test]
fn pool_wrapping_catches_queries_from_every_connection() {
    let d = deploy();
    // Saturate the pool so multiple distinct connections serve requests.
    for i in 0..10 {
        d.app.handle(&HttpRequest::get(
            "h",
            "/cars",
            &[("maxprice", &format!("{}", 10000 + i))],
        ));
    }
    let mut mapper = d.mapper;
    let report = mapper.run_once();
    assert_eq!(report.mapped, 10, "every query logged regardless of connection");
}

#[test]
fn non_select_statements_never_reach_the_map() {
    let mut d = deploy();
    // A servlet that also writes (e.g. a page-view counter).
    d.app.register(Arc::new(CountingServlet));
    d.app.handle(&HttpRequest::get("h", "/counting", &[]));
    let report = d.mapper.run_once();
    assert_eq!(report.non_select, 1);
    assert_eq!(report.mapped, 1, "only the SELECT is mapped");
}

struct CountingServlet;

impl cacheportal_web::Servlet for CountingServlet {
    fn spec(&self) -> &ServletSpec {
        static SPEC: std::sync::OnceLock<ServletSpec> = std::sync::OnceLock::new();
        SPEC.get_or_init(|| ServletSpec::new("counting"))
    }

    fn handle(
        &self,
        _req: &HttpRequest,
        conn: &mut dyn cacheportal_web::Connection,
    ) -> cacheportal_db::DbResult<String> {
        conn.execute("INSERT INTO Car VALUES ('x','y',1)", &[])?;
        let r = conn.query("SELECT COUNT(*) FROM Car", &[])?;
        Ok(format!("<html><body>{}</body></html>", r.rows[0][0]))
    }
}

#[test]
fn mapper_handles_interleaved_timestamps_from_concurrent_requests() {
    // Hand-crafted overlapping windows (as under real concurrency): queries
    // must map to at least their true request (conservatively to both).
    let rl = Arc::new(RequestLog::new());
    let ql = QueryLog::new();
    let map = Arc::new(QiUrlMap::new());
    use cacheportal_web::{PageKey, RequestObserver, RequestRecord};
    rl.on_request(RequestRecord {
        id: 1,
        servlet: "s".into(),
        request_string: "/s?a=1".into(),
        cookie_string: String::new(),
        post_string: String::new(),
        page_key: PageKey::raw("A"),
        received: 0,
        delivered: 100,
    });
    rl.on_request(RequestRecord {
        id: 2,
        servlet: "s".into(),
        request_string: "/s?a=2".into(),
        cookie_string: String::new(),
        post_string: String::new(),
        page_key: PageKey::raw("B"),
        received: 10,
        delivered: 60,
    });
    ql.record("SELECT * FROM Car WHERE price < $1", &[Value::Int(1)], true, 20, 30);
    ql.record("SELECT * FROM Car WHERE price < $1", &[Value::Int(2)], true, 70, 90);
    let mut mapper = Mapper::new(rl, ql, map.clone());
    let report = mapper.run_once();
    // First query overlaps both windows (2 mappings); second only request 1.
    assert_eq!(report.mapped, 3);
    assert_eq!(report.ambiguous, 1);
    let rows = map.all();
    let a_rows = rows.iter().filter(|r| r.page_key == PageKey::raw("A")).count();
    let b_rows = rows.iter().filter(|r| r.page_key == PageKey::raw("B")).count();
    assert_eq!((a_rows, b_rows), (2, 1));
}

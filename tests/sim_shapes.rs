//! Integration tests on the simulator: the qualitative *shapes* of the
//! paper's Tables 2 and 3 must hold at the full experiment horizon.

use cacheportal_sim::{
    simulate, Conf2CacheAccess, Configuration, SimParams, UpdateRate, SEC,
};

fn run(conf: Configuration, rate: UpdateRate, access: Conf2CacheAccess) -> cacheportal_sim::RunResult {
    let params = SimParams::paper_baseline()
        .with_duration(60 * SEC)
        .with_update_rate(rate)
        .with_conf2_access(access);
    simulate(conf, &params)
}

fn exp_ms(r: &cacheportal_sim::RunResult) -> f64 {
    r.row.all_resp.mean_ms().expect("requests completed")
}

#[test]
fn table2_conf_i_is_orders_of_magnitude_slower() {
    for rate in [UpdateRate::NONE, UpdateRate::MEDIUM, UpdateRate::HIGH] {
        let i = run(Configuration::ReplicatedDb, rate, Conf2CacheAccess::Negligible);
        let iii = run(Configuration::WebCache, rate, Conf2CacheAccess::Negligible);
        assert!(
            exp_ms(&i) > 20.0 * exp_ms(&iii),
            "{}: Conf I {} vs Conf III {}",
            rate.label(),
            exp_ms(&i),
            exp_ms(&iii)
        );
        // Conf I responses are in the tens of seconds, like the paper's ≈40 s.
        assert!(exp_ms(&i) > 10_000.0);
    }
}

#[test]
fn table2_conf_iii_beats_conf_ii_and_gap_grows_with_updates() {
    let mut gaps = Vec::new();
    for rate in [UpdateRate::NONE, UpdateRate::MEDIUM, UpdateRate::HIGH] {
        let ii = run(Configuration::MiddleTierCache, rate, Conf2CacheAccess::Negligible);
        let iii = run(Configuration::WebCache, rate, Conf2CacheAccess::Negligible);
        let gap = (exp_ms(&ii) - exp_ms(&iii)) / exp_ms(&ii);
        assert!(gap > 0.0, "{}: III must win ({gap})", rate.label());
        gaps.push(gap);
    }
    assert!(
        gaps[2] > gaps[0],
        "gap must grow with update rate: {gaps:?}"
    );
    // The paper reports ≈20% at the highest update load; accept 10–35%.
    assert!(
        (0.10..0.35).contains(&gaps[2]),
        "gap at <12,12,12,12> should be around 20%, got {:.1}%",
        gaps[2] * 100.0
    );
}

#[test]
fn table2_conf_iii_hits_are_flat_while_conf_ii_hits_degrade() {
    let hit = |conf, rate| {
        run(conf, rate, Conf2CacheAccess::Negligible)
            .row
            .hit_resp
            .mean_ms()
            .unwrap()
    };
    let iii_none = hit(Configuration::WebCache, UpdateRate::NONE);
    let iii_high = hit(Configuration::WebCache, UpdateRate::HIGH);
    assert!(
        (iii_high - iii_none).abs() / iii_none < 0.15,
        "Conf III hits must not feel the update load: {iii_none} → {iii_high}"
    );
    let ii_none = hit(Configuration::MiddleTierCache, UpdateRate::NONE);
    let ii_high = hit(Configuration::MiddleTierCache, UpdateRate::HIGH);
    assert!(
        ii_high > ii_none,
        "Conf II hits share the congested network: {ii_none} → {ii_high}"
    );
}

#[test]
fn table2_db_time_grows_with_update_rate() {
    let db = |rate| {
        run(Configuration::WebCache, rate, Conf2CacheAccess::Negligible)
            .row
            .miss_db
            .mean_ms()
            .unwrap()
    };
    let none = db(UpdateRate::NONE);
    let med = db(UpdateRate::MEDIUM);
    let high = db(UpdateRate::HIGH);
    assert!(none < med && med < high, "{none} < {med} < {high}");
}

#[test]
fn table2_conf_iii_misses_see_faster_db_than_conf_ii() {
    // §5.3.1's second observation: less shared-network load in Conf III
    // keeps DB access consistently cheaper.
    for rate in [UpdateRate::MEDIUM, UpdateRate::HIGH] {
        let ii = run(Configuration::MiddleTierCache, rate, Conf2CacheAccess::Negligible);
        let iii = run(Configuration::WebCache, rate, Conf2CacheAccess::Negligible);
        assert!(
            iii.row.miss_db.mean_ms().unwrap() <= ii.row.miss_db.mean_ms().unwrap(),
            "{}",
            rate.label()
        );
    }
}

#[test]
fn table3_local_dbms_cache_is_catastrophic_even_without_updates() {
    let t3 = run(
        Configuration::MiddleTierCache,
        UpdateRate::NONE,
        Conf2CacheAccess::LocalDbms,
    );
    let t2 = run(
        Configuration::MiddleTierCache,
        UpdateRate::NONE,
        Conf2CacheAccess::Negligible,
    );
    let iii = run(Configuration::WebCache, UpdateRate::NONE, Conf2CacheAccess::Negligible);
    // Paper: 52632 ms vs 471 ms vs 450 ms.
    assert!(exp_ms(&t3) > 20.0 * exp_ms(&t2));
    assert!(exp_ms(&t3) > 20.0 * exp_ms(&iii));
    // And the *hits* are the problem (connection cost), unlike Table 2.
    assert!(t3.row.hit_resp.mean_ms().unwrap() > 1_000.0);
}

#[test]
fn table3_conf_iii_unaffected_by_conf_ii_access_model() {
    let a = run(Configuration::WebCache, UpdateRate::NONE, Conf2CacheAccess::Negligible);
    let b = run(Configuration::WebCache, UpdateRate::NONE, Conf2CacheAccess::LocalDbms);
    assert_eq!(
        a.row.all_resp.sum, b.row.all_resp.sum,
        "the Conf II knob must not leak into Conf III"
    );
}

#[test]
fn hit_ratio_sweep_is_monotone_for_cached_configs() {
    let exp_at = |h: f64| {
        let params = SimParams::paper_baseline()
            .with_duration(30 * SEC)
            .with_hit_ratio(h);
        exp_ms(&simulate(Configuration::WebCache, &params))
    };
    let lo = exp_at(0.2);
    let mid = exp_at(0.5);
    let hi = exp_at(0.9);
    assert!(lo > mid && mid > hi, "{lo} > {mid} > {hi}");
}

#[test]
fn per_class_response_ordering_matches_query_weight() {
    let r = run(Configuration::WebCache, UpdateRate::NONE, Conf2CacheAccess::Negligible);
    let mean = |class| {
        r.per_class
            .iter()
            .find(|(c, hit, _)| *c == class && !hit)
            .and_then(|(_, _, agg)| agg.mean_ms())
            .unwrap()
    };
    let light = mean(cacheportal_sim::PageClass::Light);
    let medium = mean(cacheportal_sim::PageClass::Medium);
    let heavy = mean(cacheportal_sim::PageClass::Heavy);
    assert!(light < medium && medium < heavy, "{light} < {medium} < {heavy}");
}

//! Distributed deployment (paper Figure 7): the sniffer runs next to the
//! servers and the invalidator "sits on a separate machine which fetches
//! the logs … at regular intervals". Here the machine boundary is exercised
//! by shipping the QI/URL map as JSON between a sniffer-side process and an
//! invalidator-side process that share only the database.

use cacheportal_db::schema::ColType;
use cacheportal_db::Database;
use cacheportal_invalidator::{Invalidator, InvalidatorConfig};
use cacheportal_sniffer::{LoggedConnection, Mapper, QiUrlMap, QueryLog, RequestLog};
use cacheportal_web::{
    shared, AppServer, AppServerConfig, Clock, ConnectionFactory, ConnectionPool, DbConnection,
    HttpRequest, ManualClock, ParamSource, QueryTemplate, ServletSpec, SqlServlet,
};
use std::sync::Arc;

/// The "web machine": servers + sniffer, producing QI/URL JSON snapshots.
struct WebMachine {
    app: Arc<AppServer>,
    mapper: Mapper,
    map: Arc<QiUrlMap>,
}

impl WebMachine {
    fn new(db: cacheportal_web::SharedDb) -> Self {
        let clock = ManualClock::new();
        let query_log = QueryLog::new();
        let factory: ConnectionFactory = {
            let db = db.clone();
            let log = query_log.clone();
            let clock: Arc<dyn Clock> = clock.clone();
            Arc::new(move || {
                Box::new(LoggedConnection::new(
                    DbConnection::new(db.clone()),
                    log.clone(),
                    clock.clone(),
                ))
            })
        };
        let app = Arc::new(AppServer::new(
            ConnectionPool::new(factory, 4),
            clock,
            AppServerConfig {
                rewrite_cache_control: true,
                cache_owner: "cacheportal".into(),
            },
        ));
        let request_log = Arc::new(RequestLog::new());
        app.set_observer(request_log.clone());
        app.register(Arc::new(SqlServlet::new(
            ServletSpec::new("cars").with_key_get_params(&["maxprice"]),
            "Cars",
            vec![QueryTemplate::new(
                "SELECT * FROM Car WHERE price < $1",
                vec![ParamSource::Get("maxprice".into(), ColType::Int)],
            )],
        )));
        let map = Arc::new(QiUrlMap::new());
        let mapper = Mapper::new(request_log, query_log, map.clone());
        WebMachine { app, mapper, map }
    }

    /// Run the local mapper and export the map as a JSON snapshot — the
    /// bytes that cross the machine boundary.
    fn snapshot(&mut self) -> String {
        self.mapper.run_once();
        self.map.to_json()
    }
}

#[test]
fn invalidator_runs_from_shipped_json_snapshots() {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)").unwrap();
    db.execute("INSERT INTO Car VALUES ('Honda','Civic',18000)").unwrap();
    let start_lsn = db.high_water();
    let sdb = shared(db);

    let mut web = WebMachine::new(sdb.clone());
    // The invalidator machine: only the database connection and JSON
    // snapshots in; page keys to eject out.
    let mut invalidator = Invalidator::new(InvalidatorConfig::default());
    invalidator.start_from(start_lsn);

    // Traffic on the web machine.
    for bound in ["20000", "15000"] {
        let resp = web
            .app
            .handle(&HttpRequest::get("shop", "/cars", &[("maxprice", bound)]));
        assert_eq!(resp.status.code(), 200);
    }
    let wire_bytes = web.snapshot();

    // ... bytes travel ...
    let remote_map = QiUrlMap::from_json(&wire_bytes).unwrap();
    {
        let db = sdb.write();
        let r = invalidator.run_sync_point(&db, &remote_map).unwrap();
        assert_eq!(r.registered, 2);
    }

    // A backend update lands; next interval's snapshot has nothing new, but
    // the invalidator (registered from the previous snapshot) names the
    // right page.
    sdb.write()
        .execute("INSERT INTO Car VALUES ('Kia','Rio',17000)")
        .unwrap();
    let wire_bytes = web.snapshot();
    let remote_map = QiUrlMap::from_json(&wire_bytes).unwrap();
    let report = {
        let db = sdb.write();
        invalidator.run_sync_point(&db, &remote_map).unwrap()
    };
    assert_eq!(report.pages.len(), 1);
    assert!(
        report
            .pages
            .iter()
            .next()
            .unwrap()
            .as_str()
            .contains("maxprice=20000"),
        "only the 20000 page is affected by a 17000 car"
    );
}

#[test]
fn snapshots_are_idempotent_across_intervals() {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)").unwrap();
    let start_lsn = db.high_water();
    let sdb = shared(db);
    let mut web = WebMachine::new(sdb.clone());
    let mut invalidator = Invalidator::new(InvalidatorConfig::default());
    invalidator.start_from(start_lsn);

    web.app
        .handle(&HttpRequest::get("shop", "/cars", &[("maxprice", "9000")]));
    // The same full snapshot shipped twice must register once: the
    // invalidator's cursor rides on stable row ids preserved by the JSON
    // round trip.
    for round in 0..2 {
        let remote = QiUrlMap::from_json(&web.snapshot()).unwrap();
        let db = sdb.write();
        let r = invalidator.run_sync_point(&db, &remote).unwrap();
        if round == 0 {
            assert_eq!(r.registered, 1);
        } else {
            assert_eq!(r.registered, 0, "full-snapshot redelivery is idempotent");
        }
    }
    assert_eq!(invalidator.registry().total_instances(), 1);
}

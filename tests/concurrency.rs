//! Concurrency integration test: the functional CachePortal system serves
//! requests, absorbs backend updates, and runs synchronization points from
//! multiple threads simultaneously without deadlock — and a final sync
//! point restores full freshness.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortal, Served};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn build_portal() -> CachePortal {
    let mut db = Database::new();
    db.execute("CREATE TABLE items (grp INT, val INT, INDEX(grp))").unwrap();
    for i in 0..200 {
        db.insert_row("items", vec![(i % 8).into(), i.into()])
            .unwrap();
    }
    let portal = CachePortal::builder(db).build().unwrap();
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("items").with_key_get_params(&["grp"]),
        "Items",
        vec![QueryTemplate::new(
            "SELECT grp, val FROM items WHERE grp = $1 ORDER BY val",
            vec![ParamSource::Get("grp".into(), ColType::Int)],
        )],
    )));
    portal
}

#[test]
fn concurrent_requests_updates_and_syncs() {
    let portal = Arc::new(build_portal());
    let hits = AtomicU64::new(0);
    let served = AtomicU64::new(0);

    crossbeam::scope(|scope| {
        // Four reader threads.
        for t in 0..4 {
            let portal = Arc::clone(&portal);
            let hits = &hits;
            let served = &served;
            scope.spawn(move |_| {
                for i in 0..150u64 {
                    let grp = ((i + t * 3) % 8).to_string();
                    let req = HttpRequest::get("h", "/items", &[("grp", &grp)]);
                    let out = portal.request(&req);
                    assert_eq!(out.response.status.code(), 200);
                    served.fetch_add(1, Ordering::Relaxed);
                    if out.served == Served::CacheHit {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // One writer thread.
        {
            let portal = Arc::clone(&portal);
            scope.spawn(move |_| {
                for i in 0..60i64 {
                    portal
                        .update(&format!("INSERT INTO items VALUES ({}, {})", i % 8, 1000 + i))
                        .unwrap();
                }
            });
        }
        // One synchronizer thread.
        {
            let portal = Arc::clone(&portal);
            scope.spawn(move |_| {
                for _ in 0..25 {
                    portal.sync_point().unwrap();
                    std::thread::yield_now();
                }
            });
        }
    })
    .unwrap();

    assert_eq!(served.load(Ordering::Relaxed), 600);
    // Mid-run hits may have been transiently stale (between update and
    // sync, by design); after the final sync point everything is fresh.
    portal.sync_point().unwrap();
    assert!(
        portal.stale_pages().is_empty(),
        "final sync point must restore freshness"
    );
    // The system made real use of the cache under contention.
    assert!(hits.load(Ordering::Relaxed) > 0);
}

#[test]
fn parallel_readers_share_cached_pages() {
    let portal = Arc::new(build_portal());
    // Warm a page, then hammer it from many threads: every request must be
    // a hit and byte-identical.
    let req = HttpRequest::get("h", "/items", &[("grp", "3")]);
    let warm = portal.request(&req).response.body;

    crossbeam::scope(|scope| {
        for _ in 0..8 {
            let portal = Arc::clone(&portal);
            let req = req.clone();
            let warm = warm.clone();
            scope.spawn(move |_| {
                for _ in 0..100 {
                    let out = portal.request(&req);
                    assert_eq!(out.served, Served::CacheHit);
                    assert_eq!(out.response.body, warm);
                }
            });
        }
    })
    .unwrap();
    let stats = portal.page_cache().stats();
    assert_eq!(stats.hits, 800);
}

//! Regression for the mid-window netting hazard: the aggregate
//! value-preserving rule proves a page fresh from the window's *endpoint*
//! states (net-zero deltas per group ⇒ post-state equals pre-state), but a
//! page generated *inside* the window — after an insert, before the delete
//! that nets it out — embeds an intermediate state neither endpoint ever
//! shows. The portal must guard-eject exactly those pages (found by the
//! CI fuzz matrix as a real staleness, shrunk to this trace) while still
//! keeping pages that existed across the whole window.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortal, Served};
use std::sync::Arc;

fn agg_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (g INT, v INT, INDEX(g))").unwrap();
    db.execute("INSERT INTO T VALUES (0, 5)").unwrap();
    db
}

fn portal() -> CachePortal {
    let p = CachePortal::builder(agg_db()).build().unwrap();
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("groupStats").with_key_get_params(&["maxg"]),
        "Group stats",
        vec![QueryTemplate::new(
            "SELECT g, COUNT(*), SUM(v) FROM T WHERE g < $1 GROUP BY g ORDER BY g",
            vec![ParamSource::Get("maxg".into(), ColType::Int)],
        )],
    )));
    p
}

fn stats(maxg: i64) -> HttpRequest {
    HttpRequest::get("shop", "/groupStats", &[("maxg", &maxg.to_string())])
}

/// The shrunk fuzz trace: page generated between an insert and the delete
/// that cancels it. The netting shortcut keeps it; the guard must not.
#[test]
fn page_generated_mid_window_is_guard_ejected() {
    let p = portal();
    p.update("INSERT INTO T VALUES (0, 7)").unwrap();
    // Page built at the intermediate state: COUNT=2, SUM=12.
    let first = p.request(&stats(1));
    assert_eq!(first.served, Served::Generated);
    assert!(first.response.body.contains("12"));
    // Cancel the insert: both window endpoints show COUNT=1, SUM=5, so the
    // per-group deltas net to zero and the aggregate rule keeps the page.
    p.update("DELETE FROM T WHERE g = 0 AND v = 7").unwrap();

    let r = p.sync_point().unwrap();
    assert!(
        r.netting_guard_ejected >= 1,
        "mid-window page must be guard-ejected (netted={:?})",
        r.invalidation.netted_pages
    );
    assert!(p.stale_pages().is_empty(), "guard must close the staleness");
    let regenerated = p.request(&stats(1));
    assert_eq!(regenerated.served, Served::Generated);
    assert!(regenerated.response.body.contains('5'));
    assert!(!regenerated.response.body.contains("12"));
}

/// Precision control: a page admitted in a *previous* window existed at
/// both endpoints, the endpoint proof applies, and the guard must leave it
/// cached through a value-preserving batch.
#[test]
fn page_admitted_before_the_window_survives_a_netted_batch() {
    let p = portal();
    assert_eq!(p.request(&stats(1)).served, Served::Generated);
    p.sync_point().unwrap();

    p.update("INSERT INTO T VALUES (0, 7)").unwrap();
    p.update("DELETE FROM T WHERE g = 0 AND v = 7").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 0, "netted batch must keep the pre-window page");
    assert_eq!(r.netting_guard_ejected, 0);
    assert_eq!(r.invalidation.shape_agg_skipped, 1);
    assert!(p.stale_pages().is_empty());
    assert_eq!(p.request(&stats(1)).served, Served::CacheHit);
}

//! Soak tests: sustained load through harness-generated schemas.
//!
//! 1. The four-node cluster under concurrent readers, a writer mixing
//!    single statements and transactions, and a synchronizer — schema,
//!    servlets, and workload all produced by the harness generators —
//!    followed by a full-system freshness audit.
//! 2. A single-portal generative soak: longer seeded traces with the mixed
//!    fault class active, through the harness runner's full oracle.

use cacheportal::cache::PageCacheConfig;
use cacheportal::invalidator::InvalidatorConfig;
use cacheportal::{CachePortalCluster, Served};
use cacheportal_harness::{gen_actions, run_scenario, Action, FaultClass, Scenario};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A seed whose generated scenario exercises the cluster well: picked (and
/// pinned) for having several tables and at least two servlets including a
/// join. The assertions below re-check those properties so a generator
/// change cannot silently hollow out the test.
const CLUSTER_SEED: u64 = 25;

fn cluster_scenario() -> Scenario {
    let sc = Scenario::generate(CLUSTER_SEED);
    assert!(sc.tables.len() >= 2, "pinned seed must generate a multi-table schema");
    assert!(sc.servlets.len() >= 2, "pinned seed must generate several page families");
    sc
}

#[test]
fn cluster_soak_under_concurrent_load() {
    let sc = Arc::new(cluster_scenario());
    let farm = Arc::new(
        CachePortalCluster::new(
            sc.build_database(),
            4,
            PageCacheConfig::default(),
            InvalidatorConfig::default(),
        )
        .unwrap(),
    );
    for s in &sc.servlets {
        farm.register_servlet(s.build(&sc.tables));
    }
    // The mutation half of a generated trace is the writer's script.
    let script: Vec<Action> = gen_actions(&sc, 600)
        .into_iter()
        .filter(|a| matches!(a, Action::Mutate(_) | Action::Txn(_)))
        .collect();
    assert!(script.len() >= 100, "the generated trace must carry real write load");

    let served = AtomicU64::new(0);
    let hits = AtomicU64::new(0);

    crossbeam::scope(|scope| {
        // Six reader threads across the generated page families.
        for t in 0..6u64 {
            let farm = Arc::clone(&farm);
            let sc = Arc::clone(&sc);
            let served = &served;
            let hits = &hits;
            scope.spawn(move |_| {
                for i in 0..200u64 {
                    let servlet = ((i + t) % sc.servlets.len() as u64) as usize;
                    let g = ((i * 7 + t) % cacheportal_harness::gen::GROUPS as u64) as i64;
                    let out = farm.request(&sc.request(servlet, g));
                    assert_eq!(out.response.status.code(), 200, "no 5xx under load");
                    served.fetch_add(1, Ordering::Relaxed);
                    if out.served == Served::CacheHit {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // A writer replaying the generated mutation script — transactions
        // stay atomic through the shared database handle.
        {
            let farm = Arc::clone(&farm);
            let sc = Arc::clone(&sc);
            let script = &script;
            scope.spawn(move |_| {
                for action in script {
                    match action {
                        Action::Mutate(s) => {
                            farm.update(&s.sql(&sc)).unwrap();
                        }
                        Action::Txn(stmts) => {
                            let mut db = farm.db().write();
                            let mut tx = db.begin();
                            for s in stmts {
                                tx.execute(&s.sql(&sc)).unwrap();
                            }
                            tx.commit();
                        }
                        _ => unreachable!("filtered to mutations"),
                    }
                }
            });
        }
        // Synchronizer.
        {
            let farm = Arc::clone(&farm);
            scope.spawn(move |_| {
                for _ in 0..40 {
                    farm.sync_point().unwrap();
                    std::thread::yield_now();
                }
            });
        }
    })
    .unwrap();

    assert_eq!(served.load(Ordering::Relaxed), 1200);
    assert!(hits.load(Ordering::Relaxed) > 100, "cache did real work");

    // Freshness audit after the final sync.
    farm.sync_point().unwrap();
    assert!(
        farm.stale_pages().is_empty(),
        "soak must end with a fully fresh cache"
    );
    // Load was spread across all four nodes.
    let loads = farm.node_loads();
    assert!(loads.iter().all(|&l| l > 0), "every node served: {loads:?}");
}

/// Single-portal generative soak: longer traces than the smoke matrix,
/// with every fault site active at once, through the full oracle.
#[test]
fn generative_soak_with_mixed_faults() {
    for seed in 100..106u64 {
        let sc = Scenario::generate(seed)
            .with_policy_workers((seed % 3) as u8, if seed % 2 == 0 { 4 } else { 1 })
            .with_fault(FaultClass::Mixed.spec(seed));
        let actions = gen_actions(&sc, 250);
        let outcome = run_scenario(&sc, &actions);
        assert!(
            outcome.violation.is_none(),
            "seed {seed}: {}",
            outcome.violation.unwrap()
        );
        assert!(outcome.stats.syncs >= 10, "a 250-action trace must sync often");
    }
}

//! Soak test: the four-node cluster under sustained concurrent load —
//! readers, a writer issuing single statements and transactions, and a
//! synchronizer — followed by a full-system freshness audit.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::cache::PageCacheConfig;
use cacheportal::invalidator::InvalidatorConfig;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortalCluster, Served};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn build_farm() -> CachePortalCluster {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE products (sku INT, category INT, price INT, INDEX(sku), INDEX(category))",
    )
    .unwrap();
    db.execute("CREATE TABLE stock (sku INT, qty INT, INDEX(sku))").unwrap();
    for sku in 0..150i64 {
        db.insert_row("products", vec![sku.into(), (sku % 6).into(), (10 + sku).into()])
            .unwrap();
        db.insert_row("stock", vec![sku.into(), ((sku * 3) % 40).into()])
            .unwrap();
    }
    let farm = CachePortalCluster::new(
        db,
        4,
        PageCacheConfig::default(),
        InvalidatorConfig::default(),
    )
    .unwrap();
    farm.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("category").with_key_get_params(&["id"]),
        "Category",
        vec![QueryTemplate::new(
            "SELECT sku, price FROM products WHERE category = $1 ORDER BY sku",
            vec![ParamSource::Get("id".into(), ColType::Int)],
        )],
    )));
    farm.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("detail").with_key_get_params(&["sku"]),
        "Detail",
        vec![QueryTemplate::new(
            "SELECT products.price, stock.qty FROM products, stock \
             WHERE products.sku = $1 AND products.sku = stock.sku",
            vec![ParamSource::Get("sku".into(), ColType::Int)],
        )],
    )));
    farm
}

#[test]
fn cluster_soak_under_concurrent_load() {
    let farm = Arc::new(build_farm());
    let served = AtomicU64::new(0);
    let hits = AtomicU64::new(0);

    crossbeam::scope(|scope| {
        // Six reader threads across both page families.
        for t in 0..6u64 {
            let farm = Arc::clone(&farm);
            let served = &served;
            let hits = &hits;
            scope.spawn(move |_| {
                for i in 0..200u64 {
                    let req = if (i + t) % 3 == 0 {
                        HttpRequest::get(
                            "shop",
                            "/detail",
                            &[("sku", &((i * 7 + t) % 150).to_string())],
                        )
                    } else {
                        HttpRequest::get(
                            "shop",
                            "/category",
                            &[("id", &((i + t) % 6).to_string())],
                        )
                    };
                    let out = farm.request(&req);
                    assert_eq!(out.response.status.code(), 200, "no 5xx under load");
                    served.fetch_add(1, Ordering::Relaxed);
                    if out.served == Served::CacheHit {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // A writer mixing plain updates and atomic transactions.
        {
            let farm = Arc::clone(&farm);
            scope.spawn(move |_| {
                for i in 0..80i64 {
                    if i % 4 == 0 {
                        // Atomic restock: price change + stock change together.
                        let sku = (i * 11) % 150;
                        let mut db = farm.db().write();
                        let mut tx = db.begin();
                        tx.execute(&format!(
                            "UPDATE products SET price = (price + 1) WHERE sku = {sku}"
                        ))
                        .unwrap();
                        tx.execute(&format!(
                            "UPDATE stock SET qty = (qty + 5) WHERE sku = {sku}"
                        ))
                        .unwrap();
                        tx.commit();
                    } else {
                        farm.update(&format!(
                            "UPDATE stock SET qty = {} WHERE sku = {}",
                            i % 50,
                            (i * 13) % 150
                        ))
                        .unwrap();
                    }
                }
            });
        }
        // Synchronizer.
        {
            let farm = Arc::clone(&farm);
            scope.spawn(move |_| {
                for _ in 0..40 {
                    farm.sync_point().unwrap();
                    std::thread::yield_now();
                }
            });
        }
    })
    .unwrap();

    assert_eq!(served.load(Ordering::Relaxed), 1200);
    assert!(hits.load(Ordering::Relaxed) > 100, "cache did real work");

    // Freshness audit after the final sync.
    farm.sync_point().unwrap();
    assert!(
        farm.stale_pages().is_empty(),
        "soak must end with a fully fresh cache"
    );
    // Load was spread across all four nodes.
    let loads = farm.node_loads();
    assert!(loads.iter().all(|&l| l > 0), "every node served: {loads:?}");
}

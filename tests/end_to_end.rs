//! End-to-end integration tests across all crates: the paper's Example 4.1
//! deployment driven through real HTTP requests, the sniffer, and the
//! invalidator.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::invalidator::{InvalidationPolicy, QueryTypeId};
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortal, Served};
use std::sync::Arc;

fn example_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))").unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))").unwrap();
    db.execute(
        "INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000), \
         ('Mitsubishi','Eclipse',20000)",
    )
    .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)").unwrap();
    db
}

fn join_servlet() -> Arc<dyn cacheportal::web::Servlet> {
    Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Car search",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    ))
}

fn portal() -> CachePortal {
    let p = CachePortal::builder(example_db()).build().unwrap();
    p.register_servlet(join_servlet());
    p
}

fn search(maxprice: i64) -> HttpRequest {
    HttpRequest::get("shop", "/carSearch", &[("maxprice", &maxprice.to_string())])
}

#[test]
fn paper_example_4_1_through_http() {
    let p = portal();
    // URL1 ~ Query1 (price < 20000).
    let url1 = search(20000);
    assert_eq!(p.request(&url1).served, Served::Generated);
    p.sync_point().unwrap();

    // Insert (Mitsubishi, Eclipse, 20000): does not satisfy the condition —
    // decided without polling, page survives.
    p.update("INSERT INTO Car VALUES ('Mitsubishi','Eclipse',20000)").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 0);
    assert_eq!(r.invalidation.polls.issued, 0);
    assert_eq!(p.request(&url1).served, Served::CacheHit);

    // Insert (Toyota, Avalon, 15000): satisfies price and the PollQuery
    // over Mileage finds 'Avalon' — URL1 must be invalidated.
    p.update("INSERT INTO Car VALUES ('Toyota','Avalon',15000)").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 1);
    assert_eq!(r.invalidation.polls.issued, 1);
    let regenerated = p.request(&url1);
    assert_eq!(regenerated.served, Served::Generated);
    assert!(regenerated.response.body.contains("15000"));
}

#[test]
fn cache_identity_ignores_param_order_and_noise() {
    let p = portal();
    let a = HttpRequest::get("shop", "/carSearch", &[("maxprice", "20000"), ("utm", "x")]);
    let b = HttpRequest::get("shop", "/carSearch", &[("utm", "y"), ("maxprice", "20000")]);
    assert_eq!(p.request(&a).served, Served::Generated);
    assert_eq!(
        p.request(&b).served,
        Served::CacheHit,
        "same key params → same cached page"
    );
}

#[test]
fn multi_page_selective_invalidation() {
    let p = portal();
    let pages: Vec<HttpRequest> = [19000, 21000, 26000, 40000].iter().map(|m| search(*m)).collect();
    for req in &pages {
        p.request(req);
    }
    p.sync_point().unwrap();
    assert_eq!(p.page_cache().len(), 4);

    // (Kia, Rio, 20000) with mileage: affects bounds > 20000 only.
    p.update("INSERT INTO Mileage VALUES ('Rio', 33.0)").unwrap();
    p.update("INSERT INTO Car VALUES ('Kia','Rio',20000)").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 3, "21000, 26000, 40000 pages (Mileage insert also checked)");
    assert_eq!(p.request(&pages[0]).served, Served::CacheHit);
    for req in &pages[1..] {
        assert_eq!(p.request(req).served, Served::Generated);
    }
    assert!(p.stale_pages().is_empty());
}

#[test]
fn deletes_and_updates_invalidate() {
    let p = portal();
    let url = search(30000);
    let before = p.request(&url);
    assert!(before.response.body.contains("Avalon"));
    p.sync_point().unwrap();

    p.update("UPDATE Car SET price = 31000 WHERE model = 'Avalon'").unwrap();
    p.sync_point().unwrap();
    let after = p.request(&url);
    assert_eq!(after.served, Served::Generated);
    assert!(!after.response.body.contains("Avalon"), "page reflects the price move");

    p.sync_point().unwrap();
    p.update("DELETE FROM Mileage WHERE model = 'Civic'").unwrap();
    p.sync_point().unwrap();
    let after = p.request(&url);
    assert!(!after.response.body.contains("Civic"));
    assert!(p.stale_pages().is_empty());
}

#[test]
fn conservative_policy_end_to_end_is_safe_but_coarser() {
    let exact = portal();
    let cons = portal();
    for p in [&exact, &cons] {
        p.request(&search(20000));
        p.sync_point().unwrap();
    }
    cons.set_policy(QueryTypeId(0), InvalidationPolicy::Conservative);

    // A car passing the price bound but with no Mileage partner: exact
    // polls and keeps the page; conservative ejects it.
    for p in [&exact, &cons] {
        p.update("INSERT INTO Car VALUES ('Dodge','Viper',15000)").unwrap();
    }
    let re = exact.sync_point().unwrap();
    let rc = cons.sync_point().unwrap();
    assert_eq!(re.ejected, 0);
    assert_eq!(rc.ejected, 1);
    assert_eq!(re.invalidation.polls.issued, 1);
    assert_eq!(rc.invalidation.polls.issued, 0);
    assert!(exact.stale_pages().is_empty());
    assert!(cons.stale_pages().is_empty());
}

#[test]
fn two_servlets_do_not_cross_invalidate() {
    let p = portal();
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("mileageOnly").with_key_get_params(&["model"]),
        "Mileage lookup",
        vec![QueryTemplate::new(
            "SELECT EPA FROM Mileage WHERE model = $1",
            vec![ParamSource::Get("model".into(), ColType::Str)],
        )],
    )));
    let car_page = search(20000);
    let mileage_page = HttpRequest::get("shop", "/mileageOnly", &[("model", "Civic")]);
    p.request(&car_page);
    p.request(&mileage_page);
    p.sync_point().unwrap();

    // A Car-only update that misses the join cannot touch the mileage page.
    p.update("INSERT INTO Car VALUES ('Lada','Niva',90000)").unwrap();
    p.sync_point().unwrap();
    assert_eq!(p.request(&mileage_page).served, Served::CacheHit);
    assert_eq!(p.request(&car_page).served, Served::CacheHit);

    // A Mileage update for Civic touches both (join + direct lookup).
    p.update("UPDATE Mileage SET EPA = 37.5 WHERE model = 'Civic'").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 2);
    assert!(p.stale_pages().is_empty());
}

#[test]
fn qi_url_map_grows_only_with_new_pages() {
    let p = portal();
    p.request(&search(20000));
    p.sync_point().unwrap();
    let rows = p.qi_url_map().len();
    // Re-requesting the same (cached) page adds nothing.
    p.request(&search(20000));
    p.sync_point().unwrap();
    assert_eq!(p.qi_url_map().len(), rows);
    // A new page adds one row.
    p.request(&search(22000));
    p.sync_point().unwrap();
    assert_eq!(p.qi_url_map().len(), rows + 1);
}

//! End-to-end invalidation through every predicate form the SQL subset
//! supports: IN lists, BETWEEN, LIKE, IS NULL, scalar functions, and
//! aggregates — each as a real servlet on a real CachePortal deployment.

use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortal, Served};
use std::sync::Arc;

fn portal() -> CachePortal {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE listings (city TEXT, kind TEXT, price INT, agent TEXT, INDEX(city))",
    )
    .unwrap();
    db.execute(
        "INSERT INTO listings VALUES \
         ('austin','condo',300, 'ann'), ('austin','house',500, 'bob'), \
         ('boston','condo',700, NULL), ('boston','house',900, 'cat')",
    )
    .unwrap();
    let p = CachePortal::builder(db).build().unwrap();
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("inlist").with_key_get_params(&["kind"]),
        "By kind",
        vec![QueryTemplate::new(
            "SELECT city, price FROM listings WHERE kind IN ($1, 'bungalow') ORDER BY price",
            vec![ParamSource::Get("kind".into(), ColType::Str)],
        )],
    )));
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("between").with_key_get_params(&["lo", "hi"]),
        "Price band",
        vec![QueryTemplate::new(
            "SELECT city, kind FROM listings WHERE price BETWEEN $1 AND $2 ORDER BY city, kind",
            vec![
                ParamSource::Get("lo".into(), ColType::Int),
                ParamSource::Get("hi".into(), ColType::Int),
            ],
        )],
    )));
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("like").with_key_get_params(&["prefix"]),
        "City prefix",
        vec![QueryTemplate::new(
            "SELECT city, price FROM listings WHERE city LIKE $1 ORDER BY price",
            vec![ParamSource::Get("prefix".into(), ColType::Str)],
        )],
    )));
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("unassigned"),
        "Unassigned listings",
        vec![QueryTemplate::new(
            "SELECT city, price FROM listings WHERE agent IS NULL ORDER BY price",
            vec![],
        )],
    )));
    p.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("stats").with_key_get_params(&["city"]),
        "City stats",
        vec![QueryTemplate::new(
            "SELECT COUNT(*), MIN(price), MAX(price) FROM listings WHERE city = $1",
            vec![ParamSource::Get("city".into(), ColType::Str)],
        )],
    )));
    p
}

#[test]
fn in_list_pages_invalidate_precisely() {
    let p = portal();
    let condo = HttpRequest::get("h", "/inlist", &[("kind", "condo")]);
    let house = HttpRequest::get("h", "/inlist", &[("kind", "house")]);
    p.request(&condo);
    p.request(&house);
    p.sync_point().unwrap();

    p.update("INSERT INTO listings VALUES ('denver','condo',400,'dee')").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 1, "only the condo page");
    assert_eq!(p.request(&house).served, Served::CacheHit);
    assert!(p.request(&condo).response.body.contains("denver"));
    assert!(p.stale_pages().is_empty());

    // The constant alternative in the IN list also triggers.
    p.sync_point().unwrap();
    p.update("INSERT INTO listings VALUES ('waco','bungalow',100,'eve')").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 2, "bungalow matches both pages' IN lists");
}

#[test]
fn between_pages_invalidate_on_band_membership() {
    let p = portal();
    let low = HttpRequest::get("h", "/between", &[("lo", "0"), ("hi", "400")]);
    let high = HttpRequest::get("h", "/between", &[("lo", "600"), ("hi", "1000")]);
    p.request(&low);
    p.request(&high);
    p.sync_point().unwrap();

    p.update("INSERT INTO listings VALUES ('austin','loft',350,'fay')").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 1);
    assert_eq!(p.request(&high).served, Served::CacheHit);
    assert_eq!(p.request(&low).served, Served::Generated);
    assert!(p.stale_pages().is_empty());
}

#[test]
fn like_pages_invalidate_on_pattern_match() {
    let p = portal();
    let bos = HttpRequest::get("h", "/like", &[("prefix", "bos%")]);
    let aus = HttpRequest::get("h", "/like", &[("prefix", "aus%")]);
    p.request(&bos);
    p.request(&aus);
    p.sync_point().unwrap();

    p.update("INSERT INTO listings VALUES ('boston','loft',800,'gus')").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 1);
    assert_eq!(p.request(&aus).served, Served::CacheHit);
    assert!(p.request(&bos).response.body.contains("800"));
    assert!(p.stale_pages().is_empty());
}

#[test]
fn is_null_page_tracks_null_membership() {
    let p = portal();
    let req = HttpRequest::get("h", "/unassigned", &[]);
    let before = p.request(&req);
    assert!(before.response.body.contains("700"), "seed NULL row listed");
    p.sync_point().unwrap();

    // A fully-assigned listing does not touch the NULL page.
    p.update("INSERT INTO listings VALUES ('reno','condo',200,'hal')").unwrap();
    p.sync_point().unwrap();
    assert_eq!(p.request(&req).served, Served::CacheHit);

    // An unassigned one does.
    p.update("INSERT INTO listings VALUES ('reno','house',250,NULL)").unwrap();
    let r = p.sync_point().unwrap();
    assert_eq!(r.ejected, 1);
    assert!(p.request(&req).response.body.contains("250"));
    assert!(p.stale_pages().is_empty());
}

#[test]
fn aggregate_pages_stay_safe_even_when_value_unchanged() {
    let p = portal();
    let req = HttpRequest::get("h", "/stats", &[("city", "austin")]);
    p.request(&req);
    p.sync_point().unwrap();

    // Inserting a mid-band listing changes COUNT but not MIN/MAX; the page
    // must still be ejected (content changed via COUNT).
    p.update("INSERT INTO listings VALUES ('austin','duplex',400,'ivy')").unwrap();
    p.sync_point().unwrap();
    let fresh = p.request(&req);
    assert_eq!(fresh.served, Served::Generated);
    assert!(fresh.response.body.contains("<td>3</td>"));
    assert!(p.stale_pages().is_empty());

    // Other cities never touch it.
    p.sync_point().unwrap();
    p.update("INSERT INTO listings VALUES ('boston','duplex',750,'joe')").unwrap();
    p.sync_point().unwrap();
    assert_eq!(p.request(&req).served, Served::CacheHit);
}

//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the serde stand-in's [`Value`] tree as JSON text and parses JSON
//! text back. Provides the API subset the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_value`], [`from_str`], [`from_value`],
//! [`Value`], [`Error`], and the [`json!`] macro.

pub use serde::Error;
/// JSON value — the serde stand-in's data-model tree.
pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::deserialize_value(&value)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { s: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.i)));
    }
    T::deserialize_value(&v)
}

/// Build a [`Value`] with JSON syntax.
///
/// Supports the serde_json forms the workspace uses: literals, arrays,
/// objects with string keys, and `$expr` interpolation of serializable
/// values in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats readable and round-trippable as floats.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_literal("\\u") {
                                    let hex2 = self
                                        .s
                                        .get(self.i..self.i + 4)
                                        .ok_or_else(|| Error::custom("truncated surrogate"))?;
                                    self.i += 4;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| Error::custom("bad surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| Error::custom("bad surrogate"))?;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                other => {
                    // Re-decode UTF-8: back up and take the full char.
                    if other < 0x80 {
                        out.push(other as char);
                    } else {
                        let start = self.i - 1;
                        let rest = std::str::from_utf8(&self.s[start..])
                            .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                        let c = rest.chars().next().unwrap();
                        self.i = start + c.len_utf8();
                        out.push(c);
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = json!({
            "name": "cacheportal",
            "hits": 3u64,
            "ratio": 0.75,
            "tags": ["a", "b"],
            "none": null
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"cacheportal","hits":3,"ratio":0.75,"tags":["a","b"],"none":null}"#
        );
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, -2.5, true, "x\n\"y\""], "b": {"c": null}, "big": 18446744073709551615}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0].as_i64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(-2.5));
        assert_eq!(v["a"][3].as_str(), Some("x\n\"y\""));
        assert!(v["b"]["c"].is_null());
        assert_eq!(v["big"].as_u64(), Some(u64::MAX));
        let again: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = json!({"a": [1]});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of rand 0.8's API the workspace uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, `rngs::StdRng`, integer and
//! float `gen_range` over `Range`/`RangeInclusive`, `gen_bool`, and `gen`
//! for primitives. The generator is xoshiro256** seeded through splitmix64 —
//! statistically strong enough for workload generation and property tests,
//! deterministic per seed (though the streams differ from upstream rand's,
//! which no test in this workspace depends on).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`0..10`, `0.0..1.0`, `1..=6`, …).
    /// Panics on an empty range, like rand. The element type is a separate
    /// parameter so it can be inferred from the call site (e.g. a slice
    /// index makes `gen_range(0..3)` produce `usize`), matching rand 0.8.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a primitive type over its full domain
    /// (floats: uniform in [0, 1), as rand's `Standard` does).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform `f64` in [0, 1) from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges [`Rng::gen_range`] accepts, producing elements of type `T`.
///
/// Implemented once, generically, over [`SampleUniform`] element types —
/// a single blanket impl per range shape is what lets inference flow from
/// the use site (`slice[rng.gen_range(0..3)]` → `usize`), as in rand 0.8.
pub trait SampleRange<T> {
    /// Draw one sample; panics if the range is empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Element types uniform range sampling supports.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`; panics when empty.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`; panics when empty.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: xoshiro256** with splitmix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

/// A fresh generator with an arbitrary (time-derived) seed.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0xDEAD_BEEF);
    rngs::StdRng::seed_from_u64(nanos)
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }
}

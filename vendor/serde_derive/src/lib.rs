//! Offline stand-in for `serde_derive`.
//!
//! Derives the stand-in `serde::Serialize` / `serde::Deserialize` traits
//! (value-tree model) for the item shapes this workspace uses:
//!
//! - structs with named fields
//! - tuple structs (newtypes are transparent, like serde)
//! - enums with unit and tuple variants
//!
//! Implemented with hand-rolled `proc_macro::TokenStream` parsing because
//! `syn`/`quote` are unavailable offline. Generics and named-field enum
//! variants are unsupported and panic at expansion time with a clear
//! message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (arity).
    Tuple(usize),
    /// No fields.
    Unit,
}

struct Variant {
    name: String,
    /// Tuple arity; 0 = unit variant.
    arity: usize,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => gen_struct_ser(name, fields),
        Item::Enum { name, variants } => gen_enum_ser(name, variants),
    };
    src.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => gen_struct_de(name, fields),
        Item::Enum { name, variants } => gen_enum_de(name, variants),
    };
    src.parse().expect("serde_derive generated invalid Rust")
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic types are not supported (on `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_items(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive stand-in: unexpected struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive stand-in: unexpected enum body: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive stand-in: cannot derive for `{other}` items"),
    }
}

/// Skip attributes (incl. doc comments) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stand-in: expected identifier, got {other:?}"),
    }
}

/// Count comma-separated items at the top level of a stream, ignoring
/// commas nested inside `<…>` (generic argument lists).
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut items = 0usize;
    let mut saw_tokens = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                items += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        items += 1;
    }
    items
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stand-in: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Consume the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_top_level_items(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive stand-in: struct-style enum variant `{name}` is not supported")
            }
            _ => 0,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, arity });
    }
    variants
}

// ---- codegen ----

fn gen_struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         __obj.iter().find(|(k, _)| k == \"{f}\").map(|(_, v)| v)\
                         .unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| ::serde::Error::custom(\
                         format!(\"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect();
            format!(
                "let __obj = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Fields::Unit => format!("let _ = v; Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match v.arity {
                0 => format!("{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),"),
                1 => format!(
                    "{name}::{vn}(__a) => ::serde::Value::Object(vec![(\
                     \"{vn}\".to_string(), ::serde::Serialize::serialize_value(__a))]),"
                ),
                n => {
                    let binds: Vec<String> = (0..n).map(|i| format!("__a{i}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Object(vec![(\
                         \"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n\
         match self {{ {} }}\n\
         }}\n\
         }}",
        arms.join("\n")
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| v.arity == 0)
        .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
        .collect();
    let keyed_arms: Vec<String> = variants
        .iter()
        .filter(|v| v.arity > 0)
        .map(|v| {
            let vn = &v.name;
            if v.arity == 1 {
                format!(
                    "\"{vn}\" => return Ok({name}::{vn}(\
                     ::serde::Deserialize::deserialize_value(__payload)?)),"
                )
            } else {
                let n = v.arity;
                let items: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "\"{vn}\" => {{\n\
                     let __arr = __payload.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array payload for {name}::{vn}\"))?;\n\
                     if __arr.len() != {n} {{ return Err(::serde::Error::custom(\
                     \"wrong payload arity for {name}::{vn}\")); }}\n\
                     return Ok({name}::{vn}({}));\n\
                     }}",
                    items.join(", ")
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
         if let Some(__s) = v.as_str() {{\n\
         match __s {{ {} _ => {{}} }}\n\
         }}\n\
         if let Some(__obj) = v.as_object() {{\n\
         if __obj.len() == 1 {{\n\
         let (__key, __payload) = &__obj[0];\n\
         match __key.as_str() {{ {} _ => {{}} }}\n\
         }}\n\
         }}\n\
         Err(::serde::Error::custom(format!(\"unrecognized {name} value: {{v:?}}\")))\n\
         }}\n\
         }}",
        unit_arms.join("\n"),
        keyed_arms.join("\n")
    )
}

//! Offline stand-in for the `proptest` crate.
//!
//! Provides the API subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_filter`/`boxed`, range and
//! regex-class strategies, `Just`, tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `any::<T>()`, the `prop_oneof!` (weighted and
//! unweighted), `proptest!`, and `prop_assert*!` macros, and a
//! [`ProptestConfig`] with a case count.
//!
//! Differences from real proptest, deliberately accepted for offline use:
//! no shrinking (a failure reports the case index and the un-shrunk inputs),
//! no persistence of regression seeds (`.proptest-regressions` files are
//! ignored), and the RNG stream is seeded deterministically from the test
//! name so every run explores the same cases.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Runner plumbing used by the `proptest!` macro expansion.

    use std::fmt;

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A plain failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Alias kept for call sites that use proptest's `Reject` vocabulary.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 stream; seeded from the test name so runs
    /// are reproducible without a persistence file.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the `proptest!` macro passes the
        /// test function name).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift bounded sampling; bias is negligible for the
            // small ranges property tests use.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of `Self::Value`.
///
/// Object-safe: the combinators require `Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works as [`BoxedStrategy`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (regenerates on rejection; panics
    /// after a large number of consecutive rejections instead of proptest's
    /// global rejection accounting).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Generate via an intermediate strategy-producing function.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn gen_value(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- numeric ranges ------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// --- regex-class string strategies ---------------------------------------

/// `&'static str` literals act as regex strategies. The supported subset is
/// a single character class with a repetition count: `[a-zA-Z0-9_]{m,n}` or
/// `[abc]{m}` — exactly what this workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?} (stand-in supports [class]{{m,n}} only)"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return None;
            }
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

// --- tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9);
}

// --- weighted unions (prop_oneof!) ----------------------------------------

pub mod strategy {
    //! Strategy combinator types referenced by macro expansions.

    pub use super::{BoxedStrategy, Filter, FlatMap, Just, Map, Strategy};
    use super::TestRng;

    /// Weighted choice among boxed strategies of a common value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms; weights must not all be 0.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights summed correctly");
        }
    }
}

// --- collections ----------------------------------------------------------

pub mod collection {
    //! `prop::collection` — sized collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// `Vec` strategy drawing a length from `size`, then each element from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// --- sampling -------------------------------------------------------------

pub mod sample {
    //! `prop::sample` — choosing among explicit alternatives.

    use super::{Strategy, TestRng};

    /// Uniform choice from a non-empty vector of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty options");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

// --- any::<T>() -----------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`; `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("any::<_>()")
    }
}

// --- macros ---------------------------------------------------------------

/// Weighted or unweighted choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::Strategy::boxed($arm))),+
        ])
    };
}

/// Assert inside a property body; failure reports the case without aborting
/// the whole process immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `left != right`\n  both: {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `left != right`\n  both: {:?}\n {}",
            l, format!($($fmt)+)
        );
    }};
}

/// Declare property tests. Each inner `fn` keeps its own attributes
/// (including `#[test]`); arguments use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strat = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let inputs = $crate::Strategy::gen_value(&strat, &mut rng);
                let inputs_dbg = format!("{:?}", inputs);
                let ($($arg,)+) = inputs;
                let body = move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(body)) {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        panic!(
                            "property {} failed at case {}/{}\n{}\ninputs: {}",
                            stringify!($name), case, config.cases, e, inputs_dbg
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "property {} panicked at case {}/{}\ninputs: {}",
                            stringify!($name), case, config.cases, inputs_dbg
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_fns!(@cfg ($config) $($rest)*);
    };
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Union;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module path (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = (0i64..5).gen_value(&mut rng);
            assert!((0..5).contains(&v));
            let u = (3usize..4).gen_value(&mut rng);
            assert_eq!(u, 3);
            let f = (-2.0f64..2.0).gen_value(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_class_strategy() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..100 {
            let s = "[a-c]{1,4}".gen_value(&mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "[xyz]{0,2}".gen_value(&mut rng);
            assert!(t.len() <= 2);
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![
            9 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut rng = TestRng::deterministic("weights");
        let ones = (0..1000)
            .filter(|_| strat.gen_value(&mut rng) == 1)
            .count();
        assert!(ones > 700, "expected mostly weight-9 arm, got {ones}");
    }

    #[test]
    fn vec_and_select() {
        let mut rng = TestRng::deterministic("vec");
        let strat = crate::collection::vec(crate::sample::select(vec!["a", "b"]), 2..5);
        for _ in 0..50 {
            let v = strat.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(Just(7u8), 3);
        assert_eq!(exact.gen_value(&mut rng), vec![7, 7, 7]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, trailing comma, prop_assert forms.
        #[test]
        fn macro_roundtrip(
            xs in prop::collection::vec(0i64..10, 1..5),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(xs.len(), xs.len());
            if flag {
                prop_assert_ne!(xs.len(), 0, "non-empty by construction");
            }
        }
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` (the only API this workspace uses) on top of
//! `std::thread::scope`. Matches crossbeam's contract: spawned closures
//! receive the scope (enabling nested spawns), all threads are joined before
//! `scope` returns, and a child panic surfaces as `Err` rather than
//! propagating.

/// Scoped-thread support, mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle passed to [`scope`] closures and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // The wrapper is just a shared reference; copying it is how nested
    // spawns get their own handle.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope,
        /// as crossbeam's does (`|_| …` at most call sites).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Create a scope: all threads spawned within are joined before this
    /// returns. A panicking child makes the result `Err` with the panic
    /// payload, like crossbeam (std would instead resume the panic).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spawned_threads_join_before_return() {
        let n = AtomicU64::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| n.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| n.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}

//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in registry-less environments, so the external
//! `parking_lot` cannot be downloaded. This crate provides the subset of its
//! API the workspace uses — `Mutex`, `RwLock`, and `Condvar` with
//! non-poisoning, guard-returning `lock()`/`read()`/`write()` — implemented
//! on top of `std::sync`. Poisoned locks are recovered transparently, which
//! matches parking_lot's "no poisoning" semantics closely enough for this
//! codebase (a panicking critical section aborts the test that caused it
//! anyway).

use std::sync::TryLockError;

/// A mutex that does not poison and whose `lock()` returns the guard
/// directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety dance: std's wait consumes the guard; emulate parking_lot's
        // in-place wait by replacing the guard through a raw move.
        take_mut(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Replace `*slot` through a by-value transform, aborting on panic (the
/// transform is a condvar wait and must not unwind mid-swap).
fn take_mut<T, F: FnOnce(T) -> T>(slot: &mut T, f: F) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! Real serde serializes through a visitor pipeline; this stand-in uses a
//! much simpler model sufficient for the workspace: [`Serialize`] lowers a
//! value to an owned [`Value`] tree and [`Deserialize`] rebuilds from one.
//! The companion `serde_json` stand-in renders/parses that tree as JSON
//! text using serde_json's conventions (newtype structs transparent, unit
//! enum variants as strings, data-carrying variants as single-key objects),
//! so documents produced here look exactly like upstream serde_json's.
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the `serde_derive`
//! stand-in and re-exported here, mirroring serde's `derive` feature.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The serialization data model: a JSON-shaped value tree.
///
/// Object keys keep insertion order (fields serialize in declaration
/// order, like serde_json with `preserve_order`).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number).
    Int(i64),
    /// Unsigned integer (JSON number); kept separate so u64 > i64::MAX
    /// round-trips exactly.
    UInt(u64),
    /// Floating-point (JSON number; non-finite renders as `null`).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's entry list, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Read as a bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Read any numeric variant as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Read as u64 if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Read as i64 if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// Is this `Value::Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Array-element lookup; `None` for non-arrays / out of range.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `v["key"]`, serde_json-style: missing keys index to `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// `v[0]`, serde_json-style: out-of-range indexes to `Null`.
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produce the value tree.
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls for std types ----

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Sorted for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls for std types ----

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($($n:tt $t:ident),+; $len:expr))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
                if a.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of {}, got {}", $len, a.len()
                    )));
                }
                Ok(($($t::deserialize_value(&a[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (0 A; 1)
    (0 A, 1 B; 2)
    (0 A, 1 B, 2 C; 3)
    (0 A, 1 B, 2 C, 3 D; 4)
    (0 A, 1 B, 2 C, 3 D, 4 E; 5)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F; 6)
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::deserialize_value(&42i64.serialize_value()), Ok(42));
        assert_eq!(u64::deserialize_value(&u64::MAX.serialize_value()), Ok(u64::MAX));
        assert_eq!(
            String::deserialize_value(&"hi".serialize_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Option::<f64>::deserialize_value(&None::<f64>.serialize_value()),
            Ok(None)
        );
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize_value(&xs.serialize_value()), Ok(xs));
    }

    #[test]
    fn index_operators_default_to_null() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v["a"].as_i64(), Some(1));
        assert!(v["missing"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn negative_int_rejects_unsigned() {
        assert!(u32::deserialize_value(&Value::Int(-1)).is_err());
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! simple wall-clock measurement loop: warm up briefly, then time batches of
//! iterations until the measurement budget is spent, reporting mean/min/max
//! per iteration. No statistical machinery, no HTML reports; results print
//! to stdout and append to `target/criterion-offline.csv` so before/after
//! comparisons (e.g. the observability overhead check) are scriptable.
//!
//! When invoked by `cargo test` (libtest passes `--test`), each benchmark
//! runs exactly one iteration as a smoke test, like real criterion.

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// How `iter_batched` recreates per-iteration inputs (sizing is irrelevant
/// to this stand-in; the variants exist for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Per-iteration state of unknown size.
    PerIteration,
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("func", param)` → `func/param`.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Accepts `&str`, `String`, and `BenchmarkId` where criterion does.
pub trait IntoBenchmarkId {
    /// Render to the display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // libtest (cargo test) passes --test; honor --bench filters too.
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with("--"))
            .cloned();
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(60),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Number of timing samples to aim for (compatibility knob).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Compatibility no-op (CLI args are read in `default()`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        run_bench(self, None, &id, f);
        self
    }
}

/// A named group; per-group overrides mirror criterion's.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Compatibility no-op.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let overrides = (self.sample_size, self.measurement_time);
        run_bench_with(self.c, &full, f, overrides);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Throughput declaration (accepted, not used by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs the measurement loop.
pub struct Bencher {
    mode: BenchMode,
    /// Collected per-iteration nanoseconds (mean per timed batch).
    samples: Vec<f64>,
}

enum BenchMode {
    Test,
    Measure {
        warm_up: Duration,
        budget: Duration,
        max_samples: usize,
    },
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &self.mode {
            BenchMode::Test => {
                black_box(routine());
            }
            BenchMode::Measure {
                warm_up,
                budget,
                max_samples,
            } => {
                let (warm_up, budget, max_samples) = (*warm_up, *budget, *max_samples);
                // Warm-up: discover a batch size that takes ≥ ~1/20 of the
                // budget per sample, so Instant overhead stays negligible.
                let mut iters_per_sample = 1u64;
                let warm_start = Instant::now();
                let mut one = time_batch(&mut routine, 1);
                while warm_start.elapsed() < warm_up {
                    one = one.min(time_batch(&mut routine, 1));
                }
                let target_sample = (budget.as_nanos() as f64 / max_samples as f64).max(1_000.0);
                if (one.as_nanos() as f64) < target_sample {
                    iters_per_sample =
                        ((target_sample / one.as_nanos().max(1) as f64).ceil() as u64).clamp(1, 1 << 20);
                }
                let start = Instant::now();
                while start.elapsed() < budget && self.samples.len() < max_samples {
                    let t = time_batch(&mut routine, iters_per_sample);
                    self.samples
                        .push(t.as_nanos() as f64 / iters_per_sample as f64);
                }
                if self.samples.is_empty() {
                    let t = time_batch(&mut routine, iters_per_sample);
                    self.samples
                        .push(t.as_nanos() as f64 / iters_per_sample as f64);
                }
            }
        }
    }

    /// Time `routine` with a fresh `setup()` value each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match &self.mode {
            BenchMode::Test => {
                black_box(routine(setup()));
            }
            BenchMode::Measure {
                warm_up,
                budget,
                max_samples,
            } => {
                let (warm_up, budget, max_samples) = (*warm_up, *budget, *max_samples);
                let warm_start = Instant::now();
                loop {
                    let input = setup();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    let _ = t0.elapsed();
                    if warm_start.elapsed() >= warm_up {
                        break;
                    }
                }
                let start = Instant::now();
                while start.elapsed() < budget && self.samples.len() < max_samples {
                    let input = setup();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    self.samples.push(t0.elapsed().as_nanos() as f64);
                }
                if self.samples.is_empty() {
                    let input = setup();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    self.samples.push(t0.elapsed().as_nanos() as f64);
                }
            }
        }
    }

    /// Variant excluding drop time (measured identically here).
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

fn time_batch<O, R: FnMut() -> O>(routine: &mut R, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(routine());
    }
    start.elapsed()
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &mut Criterion, group: Option<&str>, id: &str, f: F) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    run_bench_with(c, &full, f, (None, None));
}

fn run_bench_with<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    full_id: &str,
    mut f: F,
    overrides: (Option<usize>, Option<Duration>),
) {
    if let Some(filter) = &c.filter {
        if !full_id.contains(filter.as_str()) {
            return;
        }
    }
    let mode = if c.test_mode {
        BenchMode::Test
    } else {
        BenchMode::Measure {
            warm_up: c.warm_up_time,
            budget: overrides.1.unwrap_or(c.measurement_time),
            max_samples: overrides.0.unwrap_or(c.sample_size),
        }
    };
    let mut b = Bencher {
        mode,
        samples: Vec::new(),
    };
    f(&mut b);
    if c.test_mode {
        println!("{full_id}: test ok");
        return;
    }
    if b.samples.is_empty() {
        println!("{full_id}: no samples (bencher closure never called iter?)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{full_id:<60} time: [{} {} {}] ({} samples)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        b.samples.len()
    );
    append_csv(full_id, mean, min, max, b.samples.len());
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Append machine-readable results for before/after comparisons.
fn append_csv(id: &str, mean: f64, min: f64, max: f64, samples: usize) {
    use std::io::Write as _;
    let path = std::path::Path::new("target").join("criterion-offline.csv");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = writeln!(f, "{id},{mean:.1},{min:.1},{max:.1},{samples}");
    }
}

/// Define a group runner function, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config.configure_from_args();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> Criterion {
        Criterion {
            test_mode: false,
            filter: None,
            sample_size: 5,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn iter_collects_samples() {
        let mut c = fast_config();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = fast_config();
        c.benchmark_group("g").bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

//! Compare the paper's three site configurations head-to-head with the
//! discrete-event simulator (a condensed version of the Table 2 experiment),
//! then show why the paper's Table 3 kills the middle-tier-as-local-DBMS
//! variant.
//!
//! ```text
//! cargo run --release --example config_comparison
//! ```

use cacheportal_sim::{
    simulate, Conf2CacheAccess, ConfigRow, Configuration, SimParams, UpdateRate, SEC,
};

fn main() {
    let base = SimParams::paper_baseline().with_duration(60 * SEC);

    println!("30 req/s (10 light / 10 medium / 10 heavy), 70% hit ratio, 4 nodes\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "", "miss DB", "miss resp", "hit resp", "expected"
    );
    for rate in [UpdateRate::NONE, UpdateRate::MEDIUM, UpdateRate::HIGH] {
        println!("update load {}:", rate.label());
        for conf in Configuration::ALL {
            let r = simulate(conf, &base.clone().with_update_rate(rate));
            println!(
                "  {:<12} {:>10} {:>10} {:>10} {:>10}",
                conf.label(),
                ConfigRow::fmt_cell(r.row.miss_db.mean_ms()),
                ConfigRow::fmt_cell(r.row.miss_resp.mean_ms()),
                ConfigRow::fmt_cell(r.row.hit_resp.mean_ms()),
                ConfigRow::fmt_cell(r.row.all_resp.mean_ms()),
            );
        }
    }

    // The Table 3 variant: Conf II's cache implemented as a local DBMS.
    let t3 = simulate(
        Configuration::MiddleTierCache,
        &base
            .clone()
            .with_conf2_access(Conf2CacheAccess::LocalDbms),
    );
    println!(
        "\nConf. II with a local-DBMS data cache (Table 3 variant): expected {} ms —\n\
         connection setup on every cache access makes the 'cache' slower than the\n\
         database it was protecting. Lightweight caches win (paper §5.3.2).",
        ConfigRow::fmt_cell(t3.row.all_resp.mean_ms())
    );

    // Tail latency: percentiles for the proposed configuration.
    let iii = simulate(Configuration::WebCache, &base.clone().with_update_rate(UpdateRate::MEDIUM));
    println!(
        "\nConf. III tail latency at <5,5,5,5>: p50 {:.0} ms, p95 {:.0} ms, p99 {:.0} ms",
        iii.percentiles.p50, iii.percentiles.p95, iii.percentiles.p99
    );

    // Station diagnostics for the curious: where did Conf I's time go?
    let conf1 = simulate(Configuration::ReplicatedDb, &base);
    println!("\nConf. I bottlenecks (utilization, peak queue):");
    for (name, util, peak) in conf1
        .stations
        .iter()
        .filter(|(_, util, _)| *util > 0.5)
    {
        println!("  {name:<10} {:>5.1}%  peak queue {peak}", util * 100.0);
    }
}

//! Interactive SQL shell over the `cacheportal-db` engine — explore the
//! substrate the reproduction is built on: the SQL subset, EXPLAIN plans,
//! and the update log the invalidator consumes.
//!
//! ```text
//! cargo run --example sql_repl
//! sql> CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))
//! sql> INSERT INTO Car VALUES ('Honda','Civic',18000)
//! sql> SELECT * FROM Car WHERE price < 20000
//! sql> .explain SELECT * FROM Car WHERE model = 'Civic'
//! sql> .log          -- show the update log (what the invalidator sees)
//! sql> .quit
//! ```
//!
//! Pipe a script: `echo "SELECT 1+1 FROM t" | cargo run --example sql_repl`.

use cacheportal::db::{Database, ExecOutcome, LogOp};
use cacheportal::web::render;
use std::io::{self, BufRead, Write};

fn main() {
    let mut db = Database::new();
    // A little starter schema so SELECTs work out of the box.
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT, INDEX(model))")
        .unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT, INDEX(model))")
        .unwrap();
    db.execute(
        "INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000), \
         ('Mitsubishi','Eclipse',20000)",
    )
    .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)")
        .unwrap();

    println!("cacheportal-db SQL shell — tables: Car, Mileage");
    println!("commands: .explain <select>, .log, .tables, .stats, .quit\n");

    let stdin = io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("sql> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ".quit" || line == ".exit" {
            break;
        }
        if line == ".tables" {
            for name in db.catalog().table_names() {
                let t = db.catalog().get(name).unwrap();
                let cols: Vec<String> = t
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| format!("{} {}", c.name, c.ty))
                    .collect();
                println!("{name} ({}) — {} rows", cols.join(", "), t.len());
            }
            continue;
        }
        if line == ".log" {
            let recs = db.update_log().pull_since(0);
            if recs.is_empty() {
                println!("(update log empty — the invalidator has nothing to do)");
            }
            for r in recs {
                let (op, row) = match &r.op {
                    LogOp::Insert(row) => ("+", row),
                    LogOp::Delete(row) => ("-", row),
                };
                let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("lsn {:>4}  {op} {:<10} ({})", r.lsn, r.table, vals.join(", "));
            }
            continue;
        }
        if line == ".stats" {
            let s = db.stats();
            println!(
                "selects={} inserts={} deletes={} updates={} | scanned={} probes={} joined={}",
                s.selects,
                s.inserts,
                s.deletes,
                s.updates,
                s.exec.rows_scanned,
                s.exec.index_probes,
                s.exec.rows_joined
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix(".explain ") {
            match db.explain(rest) {
                Ok(plan) => print!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match db.execute(line) {
            Ok(ExecOutcome::Rows(result)) => {
                // Text rendering: column header + rows.
                println!("{}", result.columns.join(" | "));
                for row in &result.rows {
                    let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", vals.join(" | "));
                }
                println!("({} row(s))", result.rows.len());
                // Also demonstrate the HTML renderer used by servlets:
                if std::env::var("REPL_HTML").is_ok() {
                    println!("{}", render::html_table(&result));
                }
            }
            Ok(ExecOutcome::Affected(n)) => println!("ok ({n} row(s) affected)"),
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Crude interactivity check without extra dependencies: piped stdin is fine
/// either way, we just suppress the prompt when reading a script.
fn atty_stdin() -> bool {
    // Heuristic: if an env marker is set (tests/scripts), treat as piped.
    std::env::var("REPL_NO_PROMPT").is_err()
}

//! The paper's full Figure 4 topology as a functional system: a farm of
//! web/application servers behind a round-robin load balancer, one shared
//! database, and one dynamic web-page cache in front — each node running
//! its own sniffer logs, all feeding a single invalidator.
//!
//! ```text
//! cargo run --example server_farm
//! ```

use cacheportal::cache::PageCacheConfig;
use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::invalidator::InvalidatorConfig;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortalCluster, Served};
use std::sync::Arc;

fn main() {
    // One database, shared by the whole farm.
    let mut db = Database::new();
    db.execute("CREATE TABLE news (section TEXT, id INT, headline TEXT, INDEX(section))")
        .unwrap();
    let sections = ["world", "tech", "sports", "business"];
    for i in 0..80i64 {
        let section = sections[(i % 4) as usize];
        db.insert_row(
            "news",
            vec![section.into(), i.into(), format!("Headline #{i}").into()],
        )
        .unwrap();
    }

    // Four server nodes, like the paper's testbed.
    let farm = CachePortalCluster::new(
        db,
        4,
        PageCacheConfig::default(),
        InvalidatorConfig::default(),
    )
    .unwrap();
    farm.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("section").with_key_get_params(&["name"]),
        "Section front page",
        vec![QueryTemplate::new(
            "SELECT id, headline FROM news WHERE section = $1 ORDER BY id DESC LIMIT 10",
            vec![ParamSource::Get("name".into(), ColType::Str)],
        )],
    )));

    // Cold traffic: each section page generated once, spread over the farm.
    for s in sections {
        let out = farm.request(&HttpRequest::get("news.example.com", "/section", &[("name", s)]));
        assert_eq!(out.served, Served::Generated);
    }
    println!("node loads after cold traffic: {:?}", farm.node_loads());

    // Warm traffic never reaches the farm.
    for _ in 0..5 {
        for s in sections {
            let out =
                farm.request(&HttpRequest::get("news.example.com", "/section", &[("name", s)]));
            assert_eq!(out.served, Served::CacheHit);
        }
    }
    println!("node loads after warm traffic: {:?} (unchanged)", farm.node_loads());

    farm.sync_point().unwrap();
    println!("QI/URL map rows from 4 per-node sniffers: {}", farm.qi_url_map().len());

    // Breaking news in one section: exactly that page is ejected.
    farm.update("INSERT INTO news VALUES ('tech', 1000, 'CachePortal reproduced in Rust')")
        .unwrap();
    let r = farm.sync_point().unwrap();
    println!("tech update ejected {} page(s)", r.ejected);
    assert_eq!(r.ejected, 1);

    for s in ["world", "sports", "business"] {
        assert_eq!(
            farm.request(&HttpRequest::get("news.example.com", "/section", &[("name", s)]))
                .served,
            Served::CacheHit
        );
    }
    let tech = farm.request(&HttpRequest::get(
        "news.example.com",
        "/section",
        &[("name", "tech")],
    ));
    assert_eq!(tech.served, Served::Generated);
    assert!(tech.response.body.contains("CachePortal reproduced in Rust"));
    assert!(farm.stale_pages().is_empty());

    let stats = farm.page_cache().stats();
    println!(
        "front cache: {} hits / {} lookups ({:.0}% hit ratio), no stale pages ✓",
        stats.hits,
        stats.lookups(),
        stats.hit_ratio() * 100.0
    );
}

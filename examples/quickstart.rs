//! Quickstart: cache a database-driven page, update the database, and watch
//! CachePortal invalidate exactly that page at the next synchronization
//! point.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cacheportal::{CachePortal, Served};
use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use std::sync::Arc;

fn main() {
    // 1. A database-driven site: the paper's Example 4.1 schema.
    let mut db = Database::new();
    db.execute("CREATE TABLE Car (maker TEXT, model TEXT, price INT)").unwrap();
    db.execute("CREATE TABLE Mileage (model TEXT, EPA FLOAT)").unwrap();
    db.execute(
        "INSERT INTO Car VALUES ('Toyota','Avalon',25000), ('Honda','Civic',18000)",
    )
    .unwrap();
    db.execute("INSERT INTO Mileage VALUES ('Avalon', 28.0), ('Civic', 36.5)").unwrap();

    // 2. Wire the CachePortal deployment (web cache + sniffer + invalidator).
    let portal = CachePortal::builder(db).build().unwrap();
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("carSearch").with_key_get_params(&["maxprice"]),
        "Cars under your budget",
        vec![QueryTemplate::new(
            "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage \
             WHERE Car.model = Mileage.model AND Car.price < $1",
            vec![ParamSource::Get("maxprice".into(), ColType::Int)],
        )],
    )));

    let req = HttpRequest::get("shop.example.com", "/carSearch", &[("maxprice", "20000")]);

    // 3. First request generates the page; the second is a cache hit.
    let first = portal.request(&req);
    println!("first request : {:?}", first.served);
    let second = portal.request(&req);
    println!("second request: {:?}", second.served);
    assert_eq!(second.served, Served::CacheHit);

    // Let the sniffer map the page to its query instance.
    portal.sync_point().unwrap();

    // 4. An irrelevant update (price above every cached bound): no ejection.
    portal.update("INSERT INTO Car VALUES ('Bentley','Azure',300000)").unwrap();
    let report = portal.sync_point().unwrap();
    println!("irrelevant update ejected {} page(s)", report.ejected);
    assert_eq!(portal.request(&req).served, Served::CacheHit);

    // 5. A relevant update: a cheap car with mileage data.
    portal.update("INSERT INTO Mileage VALUES ('Rio', 33.0)").unwrap();
    portal.update("INSERT INTO Car VALUES ('Kia','Rio',12000)").unwrap();
    let report = portal.sync_point().unwrap();
    println!(
        "relevant update ejected {} page(s), issued {} polling query(ies)",
        report.ejected, report.invalidation.polls.issued
    );

    let fresh = portal.request(&req);
    println!("after sync    : {:?}", fresh.served);
    assert_eq!(fresh.served, Served::Generated);
    assert!(fresh.response.body.contains("Rio"));
    println!("\nfresh page now lists the Kia Rio:\n{}", fresh.response.body);

    // The oracle agrees no cached page is stale.
    assert!(portal.stale_pages().is_empty());
    println!("freshness oracle: no stale pages ✓");

    // 6. Why was the page ejected? The provenance log kept the whole chain:
    //    consumed LSN range → per-table ΔR groups → matched query type with
    //    bound parameters → verdict → QI rows → URL.
    let ejected_url = &portal.obs().provenance.recent(1)[0].url;
    let chain = portal.explain_invalidation(ejected_url);
    println!("\nwhy was {ejected_url} ejected?");
    let m = &chain["matches"][0];
    println!(
        "  update log LSNs {}..={}",
        m["lsn_first"].as_u64().unwrap(),
        m["lsn_last"].as_u64().unwrap()
    );
    let c = &m["causes"][0];
    println!("  matched type : {}", c["type_sql"].as_str().unwrap());
    println!(
        "  bound params : {:?}",
        c["params"].as_array().unwrap().iter().filter_map(|p| p.as_str()).collect::<Vec<_>>()
    );
    println!(
        "  verdict      : {} ({})",
        c["verdict"].as_str().unwrap(),
        c["detail"].as_str().unwrap()
    );
    for row in chain["qi_map"].as_array().unwrap() {
        println!("  qi row       : {}", row["sql"].as_str().unwrap());
    }
}

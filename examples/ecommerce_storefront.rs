//! An e-commerce storefront — the workload the paper's introduction
//! motivates: catalog pages, product-detail pages with a join against
//! inventory, and a bestsellers page with aggregates; business processes
//! update prices and stock in the background.
//!
//! Shows: multiple servlets with different key parameters, selective
//! invalidation across page families, polling behaviour, maintained
//! indexes, and cache statistics.
//!
//! ```text
//! cargo run --example ecommerce_storefront
//! ```

use cacheportal::{CachePortal, Served};
use cacheportal::db::schema::ColType;
use cacheportal::db::{Database, Value};
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use std::sync::Arc;

fn build_store() -> Database {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE products (sku INT, name TEXT, category TEXT, price FLOAT, INDEX(sku), INDEX(category))",
    )
    .unwrap();
    db.execute("CREATE TABLE inventory (sku INT, warehouse TEXT, stock INT, INDEX(sku))")
        .unwrap();
    db.execute("CREATE TABLE sales (sku INT, units INT, INDEX(sku))").unwrap();

    let categories = ["audio", "video", "gaming"];
    for sku in 0..60i64 {
        let cat = categories[(sku % 3) as usize];
        db.insert_row(
            "products",
            vec![
                sku.into(),
                format!("Product #{sku}").into(),
                cat.into(),
                Value::Float(9.99 + sku as f64),
            ],
        )
        .unwrap();
        db.insert_row(
            "inventory",
            vec![sku.into(), "east".into(), ((sku * 7) % 50).into()],
        )
        .unwrap();
        db.insert_row("sales", vec![sku.into(), ((sku * 13) % 90).into()])
            .unwrap();
    }
    db
}

fn register_servlets(portal: &CachePortal) {
    // Catalog browsing: keyed by category and a price ceiling.
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("catalog").with_key_get_params(&["category", "maxprice"]),
        "Catalog",
        vec![QueryTemplate::new(
            "SELECT sku, name, price FROM products \
             WHERE category = $1 AND price <= $2 ORDER BY price",
            vec![
                ParamSource::Get("category".into(), ColType::Str),
                ParamSource::Get("maxprice".into(), ColType::Float),
            ],
        )],
    )));
    // Product detail: join against inventory.
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("product").with_key_get_params(&["sku"]),
        "Product detail",
        vec![QueryTemplate::new(
            "SELECT products.name, products.price, inventory.warehouse, inventory.stock \
             FROM products, inventory \
             WHERE products.sku = $1 AND products.sku = inventory.sku",
            vec![ParamSource::Get("sku".into(), ColType::Int)],
        )],
    )));
    // Bestsellers: aggregate page, no key params (one global page).
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("bestsellers"),
        "Bestsellers",
        vec![QueryTemplate::new(
            "SELECT sku, SUM(units) FROM sales GROUP BY sku ORDER BY sku LIMIT 10",
            vec![],
        )],
    )));
}

fn main() {
    let portal = CachePortal::builder(build_store())
        .maintain_index("inventory", "sku")
        .build()
        .unwrap();
    register_servlets(&portal);

    // Browse: warm the cache with a spread of pages.
    let catalog_audio = HttpRequest::get(
        "store",
        "/catalog",
        &[("category", "audio"), ("maxprice", "40")],
    );
    let catalog_gaming = HttpRequest::get(
        "store",
        "/catalog",
        &[("category", "gaming"), ("maxprice", "100")],
    );
    let product_5 = HttpRequest::get("store", "/product", &[("sku", "5")]);
    let product_7 = HttpRequest::get("store", "/product", &[("sku", "7")]);
    let bestsellers = HttpRequest::get("store", "/bestsellers", &[]);

    for req in [&catalog_audio, &catalog_gaming, &product_5, &product_7, &bestsellers] {
        portal.request(req);
    }
    portal.sync_point().unwrap(); // sniffer maps pages → query instances
    println!("cached pages: {}", portal.page_cache().len());
    println!("QI/URL map rows: {}", portal.qi_url_map().len());

    // Business process 1: a price drop on an audio product under $40.
    portal
        .update("UPDATE products SET price = 19.99 WHERE sku = 3")
        .unwrap();
    let r = portal.sync_point().unwrap();
    println!(
        "\nprice drop on sku 3 → ejected {} page(s) ({} poll(s), {} answered by index)",
        r.ejected, r.invalidation.polls.issued, r.invalidation.polls.from_index
    );
    // The audio catalog page and sku 3's detail page (not cached) depend on
    // it; gaming catalog and other product pages survive.
    assert_eq!(portal.request(&catalog_gaming).served, Served::CacheHit);
    assert_eq!(portal.request(&product_5).served, Served::CacheHit);
    let refreshed = portal.request(&catalog_audio);
    assert_eq!(refreshed.served, Served::Generated);
    assert!(refreshed.response.body.contains("19.99"));

    // Business process 2: warehouse restock for sku 7 — detail page only.
    portal
        .update("UPDATE inventory SET stock = 500 WHERE sku = 7")
        .unwrap();
    let r = portal.sync_point().unwrap();
    println!(
        "restock sku 7 → ejected {} page(s); product 7 regenerates, product 5 stays cached",
        r.ejected
    );
    assert_eq!(portal.request(&product_5).served, Served::CacheHit);
    let p7 = portal.request(&product_7);
    assert_eq!(p7.served, Served::Generated);
    assert!(p7.response.body.contains("500"));

    // Business process 3: a sale updates the sales table — only the
    // bestsellers page depends on it.
    portal.update("UPDATE sales SET units = 999 WHERE sku = 2").unwrap();
    let r = portal.sync_point().unwrap();
    println!("sale on sku 2 → ejected {} page(s) (bestsellers only)", r.ejected);
    assert_eq!(portal.request(&catalog_gaming).served, Served::CacheHit);
    let bs = portal.request(&bestsellers);
    assert_eq!(bs.served, Served::Generated);
    assert!(bs.response.body.contains("999"));

    // No stale page survives any sync point.
    assert!(portal.stale_pages().is_empty());

    let stats = portal.page_cache().stats();
    println!(
        "\ncache stats: {} hits / {} lookups (hit ratio {:.2}), {} invalidations",
        stats.hits,
        stats.lookups(),
        stats.hit_ratio(),
        stats.invalidations
    );
    println!("freshness oracle: no stale pages ✓");
}

//! An auction site — the hard case for dynamic-content caching: bid pages
//! change constantly, closed-auction pages almost never.
//!
//! Shows: temporal sensitivity and non-cacheable servlets (§3.1), automatic
//! policy discovery marking hot query types non-cacheable (§4.1.4), the
//! polling budget degrading gracefully to conservative invalidation
//! (§4.2.2), and the TTL baseline serving stale bids.
//!
//! ```text
//! cargo run --example auction_site
//! ```

use cacheportal::cache::{EvictionPolicy, PageCacheConfig};
use cacheportal::db::schema::ColType;
use cacheportal::db::Database;
use cacheportal::invalidator::InvalidatorConfig;
use cacheportal::web::{HttpRequest, ParamSource, QueryTemplate, ServletSpec, SqlServlet};
use cacheportal::{CachePortal, Served};
use std::sync::Arc;

fn build_auctions() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE auctions (id INT, title TEXT, status TEXT, INDEX(id))")
        .unwrap();
    db.execute("CREATE TABLE bids (auction INT, bidder TEXT, amount INT, INDEX(auction))")
        .unwrap();
    for i in 0..20i64 {
        let status = if i < 15 { "closed" } else { "live" };
        db.insert_row(
            "auctions",
            vec![i.into(), format!("Lot #{i}").into(), status.into()],
        )
        .unwrap();
        db.insert_row(
            "bids",
            vec![i.into(), "seed-bidder".into(), (100 + i).into()],
        )
        .unwrap();
    }
    db
}

fn main() {
    // Policy discovery: a type whose instances are invalidated on most
    // update batches gets marked non-cacheable after 3 batches.
    let mut inv_cfg = InvalidatorConfig::default();
    inv_cfg.policy.non_cacheable_invalidation_ratio = Some(0.6);
    inv_cfg.policy.min_batches_for_ratio = 3;
    inv_cfg.policy.poll_budget_per_sync = Some(16);

    let portal = CachePortal::builder(build_auctions())
        .invalidator_config(inv_cfg)
        .cache_config(PageCacheConfig {
            capacity: 64,
            policy: EvictionPolicy::Lru,
            ttl_micros: None,
        })
        .build()
        .unwrap();

    // Closed-auction summary: stable content, cache freely.
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("closed").with_key_get_params(&["id"]),
        "Closed auction",
        vec![QueryTemplate::new(
            "SELECT auctions.title, bids.bidder, bids.amount FROM auctions, bids \
             WHERE auctions.id = $1 AND auctions.id = bids.auction \
             ORDER BY bids.amount DESC",
            vec![ParamSource::Get("id".into(), ColType::Int)],
        )],
    )));
    // Live bid ticker: declared too temporally sensitive to cache at all.
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("ticker")
            .with_key_get_params(&["id"])
            .with_temporal_sensitivity_ms(50)
            .non_cacheable(),
        "Live ticker",
        vec![QueryTemplate::new(
            "SELECT bidder, amount FROM bids WHERE auction = $1 ORDER BY amount DESC",
            vec![ParamSource::Get("id".into(), ColType::Int)],
        )],
    )));
    // Hot-lot leaderboard: cacheable in principle, but updated so often
    // that policy discovery should ban it.
    portal.register_servlet(Arc::new(SqlServlet::new(
        ServletSpec::new("hotlots"),
        "Hot lots",
        vec![QueryTemplate::new(
            "SELECT auction, MAX(amount) FROM bids GROUP BY auction ORDER BY auction",
            vec![],
        )],
    )));

    // --- Declared non-cacheable pages are never cached -------------------
    let ticker = HttpRequest::get("auction", "/ticker", &[("id", "17")]);
    assert_eq!(portal.request(&ticker).served, Served::Generated);
    assert_eq!(portal.request(&ticker).served, Served::Generated);
    println!("ticker page: never cached (declared temporal sensitivity) ✓");

    // --- Closed auctions cache and survive unrelated bids ----------------
    let closed3 = HttpRequest::get("auction", "/closed", &[("id", "3")]);
    portal.request(&closed3);
    portal.sync_point().unwrap();
    portal
        .update("INSERT INTO bids VALUES (17, 'alice', 410)")
        .unwrap();
    portal.sync_point().unwrap();
    assert_eq!(portal.request(&closed3).served, Served::CacheHit);
    println!("closed-auction page survives bids on other lots ✓");

    // --- Policy discovery bans the hot leaderboard -----------------------
    let hotlots = HttpRequest::get("auction", "/hotlots", &[]);
    portal.request(&hotlots);
    portal.sync_point().unwrap();
    let mut banned_at = None;
    for round in 0..6 {
        portal
            .update(&format!(
                "INSERT INTO bids VALUES ({}, 'bot', {})",
                15 + (round % 5),
                500 + round * 10
            ))
            .unwrap();
        let r = portal.sync_point().unwrap();
        portal.request(&hotlots); // try to re-cache each round
        if !r.invalidation.newly_non_cacheable.is_empty() {
            banned_at = Some(round + 1);
            println!(
                "policy discovery banned after {} update batches: {}",
                round + 1,
                r.invalidation.newly_non_cacheable[0]
            );
            break;
        }
    }
    assert!(banned_at.is_some(), "hot type should get banned");
    assert_eq!(portal.request(&hotlots).served, Served::Generated);
    assert_eq!(
        portal.request(&hotlots).served,
        Served::Generated,
        "banned page no longer admitted to the cache"
    );

    // --- A bid burst exceeds the polling budget ---------------------------
    for i in 0..15 {
        let closed = HttpRequest::get("auction", "/closed", &[("id", &i.to_string())]);
        portal.request(&closed);
    }
    portal.sync_point().unwrap();
    for i in 0..40 {
        portal
            .update(&format!("INSERT INTO bids VALUES ({}, 'burst', {})", i % 15, 900 + i))
            .unwrap();
    }
    let r = portal.sync_point().unwrap();
    println!(
        "bid burst: {} polls issued (budget 16), {} decisions degraded to conservative, {} pages ejected",
        r.invalidation.polls.issued, r.invalidation.degraded_by_budget, r.ejected
    );
    assert!(r.invalidation.polls.issued <= 16);
    // Degradation never sacrifices freshness:
    assert!(portal.stale_pages().is_empty());
    println!("freshness after budget degradation: no stale pages ✓");
}

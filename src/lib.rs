#![warn(missing_docs)]

//! Umbrella crate for the CachePortal reproduction workspace.
//!
//! Re-exports the public facade crate so top-level examples and
//! integration tests have one import root.
pub use cacheportal as portal;
